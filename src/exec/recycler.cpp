#include "exec/recycler.hpp"

#include <chrono>

#include "exec/query_context.hpp"

namespace quotient {

namespace {

/// Per-query hit/miss accounting for EXPLAIN ANALYZE (no-op outside a
/// governed statement).
void NoteRecyclerOutcome(bool hit) {
  if (QueryContext* ctx = CurrentQueryContext()) ctx->RecordRecycler(hit);
}

}  // namespace

void JoinBuildArtifact::DetachBuildCharges() {
  codec.DetachRowCharges();
  GovernorRelease(extra_charge);
}

void GroupingArtifact::DetachBuildCharges() { GovernorRelease(extra_charge); }

ArtifactRecycler::ArtifactRecycler(size_t memory_budget_bytes)
    : budget_(memory_budget_bytes) {}

ArtifactPtr ArtifactRecycler::GetOrBuild(const std::string& key,
                                         const std::vector<std::string>& tables,
                                         const Builder& builder) {
  GovernorFaultPoint("recycler.lookup");
  Shard& shard = shards_[ShardIndex(key)];
  std::promise<ArtifactPtr> promise;
  std::shared_future<ArtifactPtr> future;
  bool is_builder = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      NoteRecyclerOutcome(/*hit=*/true);
      return it->second->artifact;
    }
    auto in_flight = shard.building.find(key);
    if (in_flight != shard.building.end()) {
      future = in_flight->second;
    } else {
      future = promise.get_future().share();
      shard.building.emplace(key, future);
      is_builder = true;
    }
  }

  if (!is_builder) {
    // Adopt the concurrent build, staying cancellable: the wait polls this
    // query's own governor, so Cancel/deadline trips land while another
    // session builds.
    while (future.wait_for(std::chrono::milliseconds(2)) !=
           std::future_status::ready) {
      GovernorPoll();
    }
    ArtifactPtr ready = future.get();  // builders publish nullptr on failure
    if (ready != nullptr) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      NoteRecyclerOutcome(/*hit=*/true);
      return ready;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    NoteRecyclerOutcome(/*hit=*/false);
    return nullptr;  // caller builds privately
  }

  // Builder path. A build failure (governor trip, injected fault, executor
  // error) erases the in-flight entry and publishes nullptr, so waiters
  // fall back to private builds and the NEXT request retries a shared
  // build — the cache is never poisoned.
  std::shared_ptr<RecycledArtifact> built;
  try {
    built = builder();
    // Publication is itself a fault site: a trip here fails THIS query but
    // must leave the cache clean, exactly like a build failure.
    GovernorFaultPoint("recycler.publish");
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.building.erase(key);
    }
    promise.set_value(nullptr);
    throw;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  NoteRecyclerOutcome(/*hit=*/false);

  const size_t bytes = built->ApproxBytes();
  if (built->SpilledToDisk() || budget_ == 0 || bytes > budget_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.building.erase(key);
    }
    promise.set_value(nullptr);
    // The builder still uses its own result; its charges stay the query's.
    return ArtifactPtr(std::move(built));
  }

  built->DetachBuildCharges();
  ArtifactPtr shared(std::move(built));
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.building.erase(key);
    shard.lru.push_front(Entry{key, shared, bytes, tables});
    shard.index[key] = shard.lru.begin();
  }
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  published_.fetch_add(1, std::memory_order_relaxed);
  promise.set_value(shared);
  EnforceBudget(ShardIndex(key), key);
  return shared;
}

void ArtifactRecycler::EnforceBudget(size_t start_shard, const std::string& protect) {
  for (size_t i = 0; i < kShards; ++i) {
    if (bytes_.load(std::memory_order_relaxed) <= budget_) return;
    Shard& shard = shards_[(start_shard + i) % kShards];
    std::lock_guard<std::mutex> lock(shard.mutex);
    while (bytes_.load(std::memory_order_relaxed) > budget_ && !shard.lru.empty() &&
           shard.lru.back().key != protect) {
      Entry& victim = shard.lru.back();
      bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      shard.index.erase(victim.key);
      shard.lru.pop_back();
    }
  }
}

void ArtifactRecycler::InvalidateTables(const std::vector<std::string>& tables) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      bool stale = false;
      for (const std::string& table : tables) {
        for (const std::string& ref : it->tables) {
          if (ref == table) {
            stale = true;
            break;
          }
        }
        if (stale) break;
      }
      if (stale) {
        bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
        invalidated_.fetch_add(1, std::memory_order_relaxed);
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void ArtifactRecycler::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const Entry& entry : shard.lru) {
      bytes_.fetch_sub(entry.bytes, std::memory_order_relaxed);
    }
    shard.lru.clear();
    shard.index.clear();
  }
}

RecyclerStats ArtifactRecycler::stats() const {
  RecyclerStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.published = published_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidated = invalidated_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.entries += shard.lru.size();
  }
  return stats;
}

}  // namespace quotient
