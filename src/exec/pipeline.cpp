#include "exec/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "exec/exec_basic.hpp"
#include "exec/query_context.hpp"
#include "exec/scheduler.hpp"

namespace quotient {

namespace {

constexpr size_t kDefaultMorselRows = 4096;
constexpr size_t kDefaultSerialRowThreshold = 64;

std::atomic<size_t>& MorselRowsFlag() {
  static std::atomic<size_t> rows{kDefaultMorselRows};
  return rows;
}

std::atomic<size_t>& SerialThresholdFlag() {
  static std::atomic<size_t> rows{kDefaultSerialRowThreshold};
  return rows;
}

/// Approximate payload of a batch for memory-budget charging: 8 bytes per
/// active cell for columnar batches, a flat 16 per row for row views (the
/// governor's accounting is deliberately coarse — see docs/robustness.md).
size_t ApproxBatchBytes(const Batch& batch) {
  size_t rows = batch.ActiveRows();
  return batch.row_mode() ? rows * 16 : rows * batch.num_columns() * 8;
}

PipelineStats DrainSerial(Iterator& child, PipelineSink& sink) {
  PipelineStats stats;
  Batch batch;
  while (child.NextBatch(&batch)) {
    GovernorPoll();
    GovernorFaultPoint("pipeline.drain");
    stats.rows += batch.ActiveRows();
    sink.ConsumeSerial(batch);
  }
  return stats;
}

/// A pipeline source the executor can split into row-span morsels: a
/// RelationScan under any chain of pass-through ρ operators. `chain` holds
/// every bypassed operator (child down to the scan) for row-count credit.
struct SplitSource {
  RelationScan* scan = nullptr;
  std::vector<Iterator*> chain;
};

SplitSource FindSplittableSource(Iterator& child) {
  SplitSource source;
  Iterator* it = &child;
  while (true) {
    source.chain.push_back(it);
    if (auto* scan = dynamic_cast<RelationScan*>(it)) {
      source.scan = scan;
      return source;
    }
    auto* rename = dynamic_cast<RenameIterator*>(it);
    if (rename == nullptr) {
      source.scan = nullptr;
      return source;
    }
    it = rename->InputIterators()[0];
  }
}

/// Rows per chunk: at least a morsel (and at least one batch), at most
/// ~4 chunks per worker so the merge loop stays short.
size_t ChunkRowsFor(size_t total, size_t threads) {
  size_t floor_rows = std::max<size_t>(1, std::max(GetMorselRows(), GetBatchRows()));
  size_t spread = (total + threads * 4 - 1) / (threads * 4);
  return std::max(floor_rows, spread);
}

}  // namespace

size_t GetMorselRows() { return MorselRowsFlag().load(std::memory_order_relaxed); }
void SetMorselRows(size_t rows) {
  MorselRowsFlag().store(rows == 0 ? 1 : rows, std::memory_order_relaxed);
}

size_t GetSerialRowThreshold() {
  return SerialThresholdFlag().load(std::memory_order_relaxed);
}
void SetSerialRowThreshold(size_t rows) {
  SerialThresholdFlag().store(rows, std::memory_order_relaxed);
}

PipelineChoice ChoosePipeline(const Iterator& child) {
  PipelineChoice choice;
  ExecMode mode = GetExecMode();
  if (mode == ExecMode::kTuple) {
    choice.tuple = true;
    return choice;
  }
  if (mode != ExecMode::kParallel) return choice;
  size_t threshold = GetSerialRowThreshold();
  // Threshold 0 disables every estimate-driven choice, not just the tuple
  // cutoff: tests set it to force the full parallel machinery on fixtures
  // far smaller than any sane worker cap would allow.
  if (threshold == 0) return choice;
  size_t estimated = child.EstimatedRows();
  double hint = child.cost_rows_hint();
  // The cost-model estimate accounts for selectivity and division/join
  // shrinkage; EstimatedRows() is only a structural upper bound. Prefer
  // the model when the planner supplied it.
  double rows = hint > 0 ? hint : static_cast<double>(estimated);
  if (rows <= 0) return choice;  // unknown: batched, uncapped
  if (rows <= static_cast<double>(threshold)) {
    choice.tuple = true;
    return choice;
  }
  // Cap workers so each gets at least ~two morsels of estimated work —
  // fan-out past that points pays scheduling and merge cost for nothing.
  size_t threads = GetExecThreads();
  size_t morsel = std::max<size_t>(1, std::max(GetMorselRows(), GetBatchRows()));
  size_t useful = std::max<size_t>(1, static_cast<size_t>(rows) / (2 * morsel));
  choice.workers = std::min(threads == 0 ? size_t{1} : threads, useful);
  // Spread the estimated rows over at most ~4 chunks per capped worker;
  // when the estimate overshoots the actual row count this only makes
  // chunks larger (fewer, bigger morsels), never changes results.
  if (choice.workers > 0) {
    choice.morsel_rows =
        std::max(morsel, static_cast<size_t>(rows) / (choice.workers * 4));
  }
  return choice;
}

bool UseTupleDrain(const Iterator& child) { return ChoosePipeline(child).tuple; }

PipelineStats RunPipeline(Iterator& child, PipelineSink& sink) {
  bool parallel = GetExecMode() == ExecMode::kParallel && GetExecThreads() > 1 &&
                  !OnWorkerThread() && sink.AllowParallel();
  if (!parallel) return DrainSerial(child, sink);
  PipelineChoice choice = ChoosePipeline(child);
  size_t threads = GetExecThreads();
  if (choice.workers > 0) threads = std::min(threads, choice.workers);
  if (threads <= 1) return DrainSerial(child, sink);

  SplitSource source = FindSplittableSource(child);
  if (source.scan != nullptr) {
    // Morsel-driven: contiguous id spans of the scan, read straight from
    // storage (TableEncoding id columns / relation rows are immutable), one
    // partial sink state per chunk.
    size_t rows = source.scan->TotalRows();
    size_t chunk_rows = std::max(choice.morsel_rows, ChunkRowsFor(rows, threads));
    size_t chunks = (rows + chunk_rows - 1) / chunk_rows;
    if (chunks <= 1) return DrainSerial(child, sink);

    std::vector<std::unique_ptr<SinkChunk>> states;
    states.reserve(chunks);
    for (size_t i = 0; i < chunks; ++i) states.push_back(sink.MakeChunk());
    const size_t batch_rows = GetBatchRows();
    RelationScan* scan = source.scan;
    ParallelFor(chunks, [&](size_t ci) {
      size_t begin = ci * chunk_rows;
      size_t end = std::min(rows, begin + chunk_rows);
      Batch batch;
      for (size_t at = begin; at < end; at += batch_rows) {
        GovernorPoll();
        GovernorFaultPoint("pipeline.morsel");
        scan->FillSpan(at, std::min(batch_rows, end - at), &batch);
        sink.Consume(*states[ci], batch);
      }
    });
    for (std::unique_ptr<SinkChunk>& state : states) {
      GovernorPoll();
      GovernorFaultPoint("pipeline.merge");
      sink.Merge(*state);
    }
    // The span reads bypassed the chain's NextBatch methods; credit every
    // bypassed operator with the rows it forwarded so EXPLAIN totals match
    // the serial disciplines exactly.
    for (Iterator* op : source.chain) op->AddProducedRows(rows);

    PipelineStats stats;
    stats.rows = rows;
    stats.chunks = chunks;
    stats.dop = std::min(threads, chunks);
    return stats;
  }

  // Non-splittable source (a filter, join probe, or another breaker's
  // result stream feeds this pipeline): drain it serially into buffered
  // batches, then parallelize the sink's batch kernels over contiguous
  // chunk groups of them. The stream is buffered in memory for the drain's
  // duration; this engine's inputs are in-memory relations, so the
  // transient copy is bounded by the input itself.
  std::vector<Batch> buffered;
  // Buffering is the one place the executor materializes a whole input
  // stream; charge it — transiently, released when the buffered copy dies
  // with this drain — so runaway intermediate results trip the budget
  // without permanently inflating the statement's account.
  ScopedCharge buffered_charge;
  size_t total = 0;
  {
    Batch batch;
    while (child.NextBatch(&batch)) {
      GovernorPoll();
      GovernorFaultPoint("pipeline.drain");
      buffered_charge.Add(ApproxBatchBytes(batch));
      total += batch.ActiveRows();
      buffered.push_back(std::move(batch));
      batch = Batch();
    }
  }
  PipelineStats stats;
  stats.rows = total;
  if (total == 0) return stats;

  size_t chunk_rows = std::max(choice.morsel_rows, ChunkRowsFor(total, threads));
  std::vector<std::pair<size_t, size_t>> groups;  // [first, last) batch index
  size_t group_begin = 0;
  size_t group_rows = 0;
  for (size_t i = 0; i < buffered.size(); ++i) {
    group_rows += buffered[i].ActiveRows();
    if (group_rows >= chunk_rows) {
      groups.emplace_back(group_begin, i + 1);
      group_begin = i + 1;
      group_rows = 0;
    }
  }
  if (group_begin < buffered.size()) groups.emplace_back(group_begin, buffered.size());

  if (groups.size() <= 1) {
    for (const Batch& batch : buffered) sink.ConsumeSerial(batch);
    return stats;
  }
  std::vector<std::unique_ptr<SinkChunk>> states;
  states.reserve(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) states.push_back(sink.MakeChunk());
  ParallelFor(groups.size(), [&](size_t ci) {
    for (size_t i = groups[ci].first; i < groups[ci].second; ++i) {
      GovernorPoll();
      GovernorFaultPoint("pipeline.morsel");
      sink.Consume(*states[ci], buffered[i]);
    }
  });
  for (std::unique_ptr<SinkChunk>& state : states) {
    GovernorPoll();
    GovernorFaultPoint("pipeline.merge");
    sink.Merge(*state);
  }
  stats.chunks = groups.size();
  stats.dop = std::min(threads, groups.size());
  return stats;
}

// ---------------------------------------------------------------- sinks

struct CodecAppendSink::Chunk : SinkChunk {
  std::vector<KeyCodec> parts;
  std::vector<BatchCodecAppender> appenders;
};

void CodecAppendSink::AddTarget(KeyCodec* target, const std::vector<size_t>* indices) {
  targets_.push_back(target);
  indices_.push_back(indices);
  serial_.emplace_back(target, indices);
}

void CodecAppendSink::ConsumeSerial(const Batch& batch) {
  GovernorFaultPoint("sink.codec_append");
  // The target codecs' row stores charge (and spill) their own bytes.
  for (BatchCodecAppender& appender : serial_) appender.Append(batch);
}

std::unique_ptr<SinkChunk> CodecAppendSink::MakeChunk() {
  auto chunk = std::make_unique<Chunk>();
  chunk->parts.reserve(targets_.size());
  chunk->appenders.reserve(targets_.size());
  for (const std::vector<size_t>* indices : indices_) chunk->parts.emplace_back(indices->size());
  for (size_t i = 0; i < targets_.size(); ++i) {
    chunk->appenders.emplace_back(&chunk->parts[i], indices_[i]);
  }
  return chunk;
}

void CodecAppendSink::Consume(SinkChunk& chunk, const Batch& batch) {
  GovernorFaultPoint("sink.codec_append");
  for (BatchCodecAppender& appender : static_cast<Chunk&>(chunk).appenders) {
    appender.Append(batch);
  }
}

void CodecAppendSink::Merge(SinkChunk& chunk) {
  Chunk& c = static_cast<Chunk&>(chunk);
  for (size_t i = 0; i < targets_.size(); ++i) {
    targets_[i]->AppendTranslated(c.parts[i]);
    // The chunk-local rows now live (charged) in the target codec; stop
    // double-counting the transient copy.
    c.parts[i].ReleaseRowCharges();
  }
}

struct ProbeAppendSink::Chunk : SinkChunk {
  Chunk(size_t a_cols, const std::vector<size_t>* a_indices, const KeyNumbering* numbering,
        const KeyCodec* b_codec, const std::vector<size_t>* b_indices)
      : a_part(a_cols), appender(&a_part, a_indices) {
    probe.Bind(numbering, b_codec, b_indices);
  }
  KeyCodec a_part;
  BatchCodecAppender appender;
  BatchKeyProbe probe;
  std::vector<uint32_t> row_b;
  ScopedCharge row_b_charge;  // transient: released when the chunk merges
};

ProbeAppendSink::ProbeAppendSink(KeyCodec* a_codec, const std::vector<size_t>* a_indices,
                                 const KeyNumbering* numbering, const KeyCodec* b_codec,
                                 const std::vector<size_t>* b_indices,
                                 SpilledU32Store* row_b)
    : a_codec_(a_codec),
      a_indices_(a_indices),
      numbering_(numbering),
      b_codec_(b_codec),
      b_indices_(b_indices),
      row_b_(row_b),
      serial_append_(a_codec, a_indices) {
  serial_probe_.Bind(numbering, b_codec, b_indices);
}

void ProbeAppendSink::ConsumeSerial(const Batch& batch) {
  GovernorFaultPoint("sink.probe_append");
  // The a-codec's store and row_b_ itself charge (and spill) their bytes.
  serial_append_.Append(batch);
  scratch_.clear();
  serial_probe_.Resolve(batch, &scratch_);
  row_b_->Append(scratch_.data(), scratch_.size());
}

std::unique_ptr<SinkChunk> ProbeAppendSink::MakeChunk() {
  return std::make_unique<Chunk>(a_indices_->size(), a_indices_, numbering_, b_codec_,
                                 b_indices_);
}

void ProbeAppendSink::Consume(SinkChunk& chunk, const Batch& batch) {
  GovernorFaultPoint("sink.probe_append");
  Chunk& c = static_cast<Chunk&>(chunk);
  c.appender.Append(batch);
  c.row_b_charge.Add(batch.ActiveRows() * sizeof(uint32_t));
  c.probe.Resolve(batch, &c.row_b);
}

void ProbeAppendSink::Merge(SinkChunk& chunk) {
  Chunk& c = static_cast<Chunk&>(chunk);
  a_codec_->AppendTranslated(c.a_part);
  c.a_part.ReleaseRowCharges();
  row_b_->Append(c.row_b.data(), c.row_b.size());
  c.row_b.clear();
  c.row_b.shrink_to_fit();
  c.row_b_charge.ReleaseNow();
}

namespace {

void MaterializeRows(const Batch& batch, const std::vector<size_t>* proj,
                     std::vector<Tuple>* out) {
  size_t n = batch.ActiveRows();
  for (size_t i = 0; i < n; ++i) {
    uint32_t row = batch.RowAt(i);
    Tuple t;
    if (proj != nullptr) {
      t.reserve(proj->size());
      for (size_t c : *proj) t.push_back(batch.At(row, c));
    } else {
      batch.ToTuple(row, &t);
    }
    out->push_back(std::move(t));
  }
}

}  // namespace

struct JoinBuildSink::Chunk : SinkChunk {
  Chunk(size_t key_cols, const std::vector<size_t>* key_indices)
      : part(key_cols), appender(&part, key_indices) {}
  KeyCodec part;
  BatchCodecAppender appender;
  std::vector<Tuple> rows;
};

JoinBuildSink::JoinBuildSink(KeyCodec* codec, const std::vector<size_t>* key_indices,
                             const std::vector<size_t>* proj, std::vector<Tuple>* rows)
    : codec_(codec),
      key_indices_(key_indices),
      proj_(proj),
      rows_(rows),
      serial_(codec, key_indices) {}

void JoinBuildSink::ConsumeSerial(const Batch& batch) {
  GovernorFaultPoint("sink.join_build");
  // Key bytes are charged by the codec's row store; charge the materialized
  // build tuples here (retained for the statement's lifetime).
  size_t row_cols = proj_ != nullptr ? proj_->size() : batch.num_columns();
  GovernorCharge(batch.ActiveRows() * (row_cols + 2) * 8);
  serial_.Append(batch);
  MaterializeRows(batch, proj_, rows_);
}

std::unique_ptr<SinkChunk> JoinBuildSink::MakeChunk() {
  return std::make_unique<Chunk>(key_indices_->size(), key_indices_);
}

void JoinBuildSink::Consume(SinkChunk& chunk, const Batch& batch) {
  GovernorFaultPoint("sink.join_build");
  size_t row_cols = proj_ != nullptr ? proj_->size() : batch.num_columns();
  GovernorCharge(batch.ActiveRows() * (row_cols + 2) * 8);
  Chunk& c = static_cast<Chunk&>(chunk);
  c.appender.Append(batch);
  MaterializeRows(batch, proj_, &c.rows);
}

void JoinBuildSink::Merge(SinkChunk& chunk) {
  Chunk& c = static_cast<Chunk&>(chunk);
  codec_->AppendTranslated(c.part);
  c.part.ReleaseRowCharges();
  rows_->reserve(rows_->size() + c.rows.size());
  for (Tuple& t : c.rows) rows_->push_back(std::move(t));
}

// -------------------------------------------- plan-level decomposition

namespace {

void WalkPipelines(Iterator* it, PipelineDesc* current, std::vector<PipelineDesc>* out) {
  current->ops.push_back(it);
  std::vector<Iterator*> children = it->InputIterators();
  std::vector<size_t> blocking = it->BlockingInputs();
  for (size_t i = 0; i < children.size(); ++i) {
    bool breaks = std::find(blocking.begin(), blocking.end(), i) != blocking.end();
    if (breaks) {
      PipelineDesc sub;
      sub.sink = it;
      WalkPipelines(children[i], &sub, out);
      std::reverse(sub.ops.begin(), sub.ops.end());  // source first
      out->push_back(std::move(sub));
    } else {
      WalkPipelines(children[i], current, out);
    }
  }
}

}  // namespace

std::vector<PipelineDesc> DecomposePipelines(Iterator& root) {
  std::vector<PipelineDesc> pipelines;
  PipelineDesc top;
  top.sink = &root;
  WalkPipelines(&root, &top, &pipelines);
  std::reverse(top.ops.begin(), top.ops.end());
  pipelines.push_back(std::move(top));
  return pipelines;
}

std::string DescribePipelines(Iterator& root) {
  std::vector<PipelineDesc> pipelines = DecomposePipelines(root);
  std::string out;
  for (size_t i = 0; i < pipelines.size(); ++i) {
    const PipelineDesc& p = pipelines[i];
    out += "pipeline " + std::to_string(i) + ":";
    for (Iterator* op : p.ops) {
      out += " ";
      out += op->name();
      out += " ->";
    }
    bool drains_into_sink = p.sink != nullptr && (p.ops.empty() || p.ops.back() != p.sink);
    if (drains_into_sink) {
      out += std::string(" [") + p.sink->name() + "]";
      // pipeline_dop() is recorded per operator as the max over its drains,
      // so it is labeled on the sink, not claimed per pipeline: a breaker
      // that drained a tiny input serially and a large one 8-way shows
      // "dop=8" on both of its drain pipelines' sink tag.
      if (p.sink->pipeline_dop() > 0) {
        out += " dop=" + std::to_string(p.sink->pipeline_dop());
      }
    } else {
      out += " output";
    }
    out += "\n";
  }
  return out;
}

}  // namespace quotient
