#include "exec/spill.hpp"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "exec/query_context.hpp"

namespace quotient {

namespace {

// Rows per read-cache page. Large enough that sequential scans over spilled
// runs amortize the pread; small enough that re-draining stays bounded.
constexpr size_t kCacheRows = 1024;

}  // namespace

// ---------------------------------------------------------------- manager

SpillManager::SpillManager(std::string dir) : dir_(std::move(dir)) {}

SpillManager::~SpillManager() {
  int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
}

void SpillManager::EnsureOpenLocked() {
  if (fd_.load(std::memory_order_relaxed) >= 0) return;
  GovernorFaultPoint("spill.open");
  std::string dir = dir_;
  if (dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  }
  std::string path = dir + "/quotient-spill-XXXXXX";
  std::vector<char> buf(path.begin(), path.end());
  buf.push_back('\0');
  int fd = ::mkstemp(buf.data());
  if (fd < 0) {
    throw QueryAbort(Status::Error(std::string("spill open failed: ") + buf.data() +
                                   ": " + ::strerror(errno)));
  }
  // Anonymous: the space is reclaimed on close no matter how we exit.
  ::unlink(buf.data());
  fd_.store(fd, std::memory_order_release);
}

uint64_t SpillManager::Write(const void* data, size_t bytes) {
  // Poll + fault before taking the lock, so a trip never holds up other
  // flushing stores.
  GovernorPoll();
  GovernorFaultPoint("spill.write");
  GovernorFaultPoint("spill.disk_full");
  std::lock_guard<std::mutex> lock(mutex_);
  EnsureOpenLocked();
  int fd = fd_.load(std::memory_order_relaxed);
  const uint64_t offset = end_;
  const char* p = static_cast<const char*>(data);
  size_t remaining = bytes;
  uint64_t at = offset;
  while (remaining > 0) {
    ssize_t n = ::pwrite(fd, p, remaining, static_cast<off_t>(at));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw QueryAbort(
          Status::Error(std::string("spill write failed: ") + ::strerror(errno)));
    }
    p += n;
    at += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
  end_ += bytes;
  partitions_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  return offset;
}

void SpillManager::Read(void* dst, size_t bytes, uint64_t offset) {
  GovernorPoll();
  GovernorFaultPoint("spill.read");
  int fd = fd_.load(std::memory_order_acquire);
  char* p = static_cast<char*>(dst);
  size_t remaining = bytes;
  uint64_t at = offset;
  while (remaining > 0) {
    ssize_t n = ::pread(fd, p, remaining, static_cast<off_t>(at));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw QueryAbort(Status::Error(
          std::string("spill read failed: ") +
          (n < 0 ? ::strerror(errno) : "short read past end of spill file")));
    }
    p += n;
    at += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
}

// ------------------------------------------------------------------ store

SpilledU32Store& SpilledU32Store::operator=(SpilledU32Store&& other) noexcept {
  if (this == &other) return *this;
  // Charges travel with the rows they account for; the overwritten state's
  // charge stays with its ctx (released by whoever owned it, or absorbed as
  // permanent build-state accounting).
  stride_ = other.stride_;
  rows_ = other.rows_;
  mem_first_row_ = other.mem_first_row_;
  mem_ = std::move(other.mem_);
  runs_ = std::move(other.runs_);
  spill_ = other.spill_;
  charged_ = other.charged_;
  charge_ctx_ = other.charge_ctx_;
  cache_ = std::move(other.cache_);
  cache_first_row_ = other.cache_first_row_;
  cache_rows_ = other.cache_rows_;
  other.stride_ = 0;
  other.rows_ = 0;
  other.mem_first_row_ = 0;
  other.runs_.clear();
  other.spill_ = nullptr;
  other.charged_ = 0;
  other.charge_ctx_ = nullptr;
  other.cache_rows_ = 0;
  return *this;
}

void SpilledU32Store::Reserve(size_t rows) {
  if (stride_ == 0) return;
  if (QueryContext* ctx = CurrentQueryContext()) {
    size_t watermark = ctx->spill_watermark_bytes();
    if (watermark > 0) {
      size_t max_rows = watermark / (stride_ * sizeof(uint32_t));
      rows = std::min(rows, max_rows);
    }
  }
  mem_.reserve(rows * stride_);
}

void SpilledU32Store::Append(const uint32_t* ids, size_t nrows) {
  if (nrows == 0) return;
  rows_ += nrows;
  if (stride_ == 0) return;  // inert store: row count only
  // Record the charge before Charge() so a budget trip mid-append still
  // releases the full amount on the owner's unwind path.
  if (charge_ctx_ == nullptr) charge_ctx_ = CurrentQueryContext();
  mem_.insert(mem_.end(), ids, ids + nrows * stride_);
  if (charge_ctx_ != nullptr) {
    size_t bytes = nrows * stride_ * 8;  // coarse: ids + hash/aux overhead
    charged_ += bytes;
    charge_ctx_->Charge(bytes);
  }
  MaybeSpill();
}

void SpilledU32Store::MaybeSpill() {
  QueryContext* ctx = charge_ctx_;
  if (ctx == nullptr || mem_.empty() || !ctx->ShouldSpill()) return;
  Flush();
}

void SpilledU32Store::Flush() {
  SpillManager* spill = charge_ctx_ != nullptr ? charge_ctx_->spill() : nullptr;
  if (spill == nullptr) return;
  uint64_t offset = spill->Write(mem_.data(), mem_.size() * sizeof(uint32_t));
  spill_ = spill;
  size_t nrows = mem_.size() / stride_;
  runs_.push_back(Run{offset, mem_first_row_, nrows});
  mem_first_row_ += nrows;
  mem_.clear();
  mem_.shrink_to_fit();
  if (charged_ > 0) {
    charge_ctx_->Release(charged_);
    charged_ = 0;
  }
}

const uint32_t* SpilledU32Store::Row(size_t row) const {
  if (stride_ == 0) return nullptr;
  if (row >= mem_first_row_) return mem_.data() + (row - mem_first_row_) * stride_;
  return SpilledRow(row);
}

const uint32_t* SpilledU32Store::SpilledRow(size_t row) const {
  if (row >= cache_first_row_ && row < cache_first_row_ + cache_rows_) {
    return cache_.data() + (row - cache_first_row_) * stride_;
  }
  // Find the run containing `row`: last run with first_row <= row.
  auto it = std::upper_bound(runs_.begin(), runs_.end(), row,
                             [](size_t r, const Run& run) { return r < run.first_row; });
  const Run& run = *(it - 1);
  size_t in_run = row - run.first_row;
  size_t page_rows = std::min(kCacheRows, run.nrows - in_run);
  cache_.resize(page_rows * stride_);
  spill_->Read(cache_.data(), page_rows * stride_ * sizeof(uint32_t),
               run.offset + static_cast<uint64_t>(in_run) * stride_ * sizeof(uint32_t));
  cache_first_row_ = row;
  cache_rows_ = page_rows;
  return cache_.data();
}

void SpilledU32Store::Clear() {
  rows_ = 0;
  mem_first_row_ = 0;
  mem_.clear();
  runs_.clear();
  cache_.clear();
  cache_rows_ = 0;
  // charged_ / charge_ctx_ untouched: Clear() does not return memory to the
  // governor (the owner decides via ReleaseCharges or keeps it permanent).
}

void SpilledU32Store::ReleaseCharges() {
  if (charge_ctx_ != nullptr && charged_ > 0) {
    charge_ctx_->Release(charged_);
    charged_ = 0;
  }
}

void SpilledU32Store::DetachCharges() {
  ReleaseCharges();
  charge_ctx_ = nullptr;
  spill_ = nullptr;  // per-query file; a detached store must never read it
}

}  // namespace quotient
