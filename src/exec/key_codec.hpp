#pragma once

// Key-encoded execution: dictionary-compressed flat keys for hash-based
// operators (division, great divide, joins, grouping, set operations).
//
// Keying a hash table by a full Tuple (vector<variant>) makes every probe
// re-walk variants and strings and every projected key a fresh heap
// allocation. Instead, each operator Open() dictionary-encodes the distinct
// Values of its key columns into dense uint32_t ids and packs a
// multi-attribute key into one flat 64-bit integer, so the hot hash tables
// become unordered_map<uint64_t, ...> with trivial hash/equality and zero
// per-probe allocation. When the per-column id widths do not fit in 64 bits
// the codec spills to SmallByteKey, an inline byte string of the raw ids.
//
// Two encoding disciplines are provided (see docs/key_encoding.md):
//   KeyCodec               — two-phase "build then probe": ingest all build
//                            rows, Seal() to fix per-column bit widths, then
//                            read back packed keys and probe foreign tuples
//                            (a probe value unseen during build cannot match
//                            any built key, so TryEncode may simply fail).
//   IncrementalKeyEncoder  — growable dictionaries with fixed 32-bit fields,
//                            for streaming deduplication where keys must be
//                            assigned before the input is exhausted.

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "algebra/tuple.hpp"
#include "exec/spill.hpp"

namespace quotient {

/// Spill key: the raw little-endian uint32 ids of a key, stored inline up to
/// kInlineBytes (8 attributes) with a heap fallback for wider keys. Totally
/// ordered (bytewise) so sort-based algorithms work on spilled keys too.
class SmallByteKey {
 public:
  static constexpr size_t kInlineBytes = 32;

  SmallByteKey() = default;
  SmallByteKey(const SmallByteKey& other) { *this = other; }
  SmallByteKey(SmallByteKey&& other) noexcept = default;
  SmallByteKey& operator=(const SmallByteKey& other) {
    if (this == &other) return *this;
    size_ = other.size_;
    if (other.heap_) {
      heap_ = std::make_unique<uint8_t[]>(size_);
      heap_cap_ = size_;
      std::memcpy(heap_.get(), other.heap_.get(), size_);
    } else {
      heap_.reset();
      heap_cap_ = 0;
      inline_ = other.inline_;
    }
    return *this;
  }
  SmallByteKey& operator=(SmallByteKey&& other) noexcept = default;

  size_t size() const { return size_; }
  size_t num_ids() const { return size_ / sizeof(uint32_t); }
  const uint8_t* data() const { return heap_ ? heap_.get() : inline_.data(); }

  void PushId(uint32_t id) {
    uint8_t* dst = EnsureCapacity(size_ + sizeof(uint32_t));
    std::memcpy(dst + size_, &id, sizeof(uint32_t));
    size_ += sizeof(uint32_t);
  }

  uint32_t IdAt(size_t i) const {
    uint32_t id;
    std::memcpy(&id, data() + i * sizeof(uint32_t), sizeof(uint32_t));
    return id;
  }

  void Clear() {
    size_ = 0;
    heap_.reset();
    heap_cap_ = 0;
  }

  bool operator==(const SmallByteKey& other) const {
    return size_ == other.size_ && std::memcmp(data(), other.data(), size_) == 0;
  }
  bool operator!=(const SmallByteKey& other) const { return !(*this == other); }
  bool operator<(const SmallByteKey& other) const {
    size_t n = size_ < other.size_ ? size_ : other.size_;
    int c = std::memcmp(data(), other.data(), n);
    if (c != 0) return c < 0;
    return size_ < other.size_;
  }

  /// FNV-1a over the key bytes.
  size_t Hash() const {
    uint64_t h = 0xcbf29ce484222325ull;
    const uint8_t* p = data();
    for (size_t i = 0; i < size_; ++i) h = (h ^ p[i]) * 0x100000001b3ull;
    return static_cast<size_t>(h);
  }

 private:
  uint8_t* EnsureCapacity(size_t needed) {
    if (!heap_) {
      if (needed <= kInlineBytes) return inline_.data();
      heap_cap_ = static_cast<uint32_t>(needed * 2);
      heap_ = std::make_unique<uint8_t[]>(heap_cap_);
      std::memcpy(heap_.get(), inline_.data(), size_);
      return heap_.get();
    }
    if (needed <= heap_cap_) return heap_.get();
    heap_cap_ = static_cast<uint32_t>(needed * 2);
    auto grown = std::make_unique<uint8_t[]>(heap_cap_);
    std::memcpy(grown.get(), heap_.get(), size_);
    heap_ = std::move(grown);
    return heap_.get();
  }

  uint32_t size_ = 0;
  uint32_t heap_cap_ = 0;
  std::array<uint8_t, kInlineBytes> inline_{};
  std::unique_ptr<uint8_t[]> heap_;
};

/// Hash functor usable for both flat-key representations. The uint64_t path
/// applies a full-avalanche mix (murmur3 fmix64) because packed keys are
/// dense in the low bits.
struct FlatKeyHash {
  size_t operator()(uint64_t k) const {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ull;
    k ^= k >> 33;
    return static_cast<size_t>(k);
  }
  size_t operator()(const SmallByteKey& k) const { return k.Hash(); }
};

/// Interns keys into dense uint32 ids via an open-addressing table (linear
/// probing, power-of-two capacity). Hashes are computed once per key and
/// cached, so growth and collision checks never re-hash; only the dense id
/// and the cached hash live in the probe path, which keeps it allocation-
/// free and cache-friendly — this is what makes encoded probes cheap.
template <typename K, typename Hash>
class FlatInterner {
 public:
  static constexpr uint32_t kNotFound = UINT32_MAX;

  FlatInterner() = default;
  explicit FlatInterner(size_t expected) { Reserve(expected); }

  /// Id of `key`, inserting it if new. Ids are dense, in first-seen order.
  uint32_t Intern(const K& key) {
    if (keys_.size() + 1 > (slots_.size() >> 1) + (slots_.size() >> 2)) Grow();
    size_t h = Hash{}(key);
    size_t mask = slots_.size() - 1;
    size_t idx = h & mask;
    while (slots_[idx] != 0) {
      uint32_t id = slots_[idx] - 1;
      if (hashes_[id] == h && keys_[id] == key) return id;
      idx = (idx + 1) & mask;
    }
    uint32_t id = static_cast<uint32_t>(keys_.size());
    slots_[idx] = id + 1;
    keys_.push_back(key);
    hashes_.push_back(h);
    return id;
  }

  /// Id of `key` if present, kNotFound otherwise. Never inserts.
  uint32_t Find(const K& key) const {
    if (slots_.empty()) return kNotFound;
    size_t h = Hash{}(key);
    size_t mask = slots_.size() - 1;
    size_t idx = h & mask;
    while (slots_[idx] != 0) {
      uint32_t id = slots_[idx] - 1;
      if (hashes_[id] == h && keys_[id] == key) return id;
      idx = (idx + 1) & mask;
    }
    return kNotFound;
  }

  const K& At(uint32_t id) const { return keys_[id]; }
  size_t size() const { return keys_.size(); }

  void Reserve(size_t expected) {
    keys_.reserve(expected);
    hashes_.reserve(expected);
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap);
  }

 private:
  void Grow() { Rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void Rehash(size_t cap) {
    slots_.assign(cap, 0);
    size_t mask = cap - 1;
    for (uint32_t id = 0; id < keys_.size(); ++id) {
      size_t idx = hashes_[id] & mask;
      while (slots_[idx] != 0) idx = (idx + 1) & mask;
      slots_[idx] = id + 1;
    }
  }

  std::vector<uint32_t> slots_;  // open-addressing table of id+1 (0 = empty)
  std::vector<K> keys_;          // id -> key
  std::vector<size_t> hashes_;   // id -> cached hash
};

/// Dense dictionary of the distinct Values of one key column.
class ValueDict {
 public:
  static constexpr uint32_t kNotFound = FlatInterner<Value, ValueHash>::kNotFound;

  /// Id of `v`, inserting it if new. Ids are dense, assigned in first-seen
  /// order.
  uint32_t GetOrAdd(const Value& v) { return interner_.Intern(v); }

  /// Id of `v` if present, kNotFound otherwise. Never inserts.
  uint32_t Find(const Value& v) const { return interner_.Find(v); }

  const Value& At(uint32_t id) const { return interner_.At(id); }
  size_t size() const { return interner_.size(); }
  void Reserve(size_t n) { interner_.Reserve(n); }

 private:
  FlatInterner<Value, ValueHash> interner_;
};

/// Two-phase key codec for blocking build sides.
///
/// Build phase: Add() every build row (interns each key column's Value and
/// records the id row-major). Seal() then assigns each column the minimal
/// bit width for its dictionary and lays the columns out in one uint64_t;
/// if the widths sum past 64 bits the codec is `spilled()` and keys are
/// SmallByteKeys of the raw ids instead.
///
/// Probe phase (after Seal): TryEncode() encodes a foreign tuple against the
/// frozen dictionaries; it fails iff some column value was never seen during
/// build, in which case the key cannot equal any built key.
class KeyCodec {
 public:
  KeyCodec() = default;
  explicit KeyCodec(size_t num_cols) : dicts_(num_cols), ids_(num_cols) {}

  size_t num_cols() const { return dicts_.size(); }
  size_t rows() const { return num_rows_; }
  bool sealed() const { return sealed_; }
  bool spilled() const { return spilled_; }
  const ValueDict& dict(size_t col) const { return dicts_[col]; }

  /// True when packed keys coincide with dense dictionary ids (single key
  /// column): the id space is exactly 0..dict(0).size()-1, so consumers can
  /// index arrays by key directly instead of interning.
  bool keys_are_dense_ids() const { return dicts_.size() == 1 && !spilled_; }

  void Reserve(size_t expected_rows) { ids_.Reserve(expected_rows); }

  /// Ingests the key columns of `t` selected by `indices` (build phase).
  void Add(const Tuple& t, const std::vector<size_t>& indices) {
    scratch_.clear();
    for (size_t c = 0; c < dicts_.size(); ++c) {
      scratch_.push_back(dicts_[c].GetOrAdd(t[indices[c]]));
    }
    ids_.Append(scratch_.data(), 1);
    ++num_rows_;
  }

  /// Ingests an already-projected key tuple (all positions, in order).
  void AddKey(const Tuple& key) {
    scratch_.clear();
    for (size_t c = 0; c < dicts_.size(); ++c) scratch_.push_back(dicts_[c].GetOrAdd(key[c]));
    ids_.Append(scratch_.data(), 1);
    ++num_rows_;
  }

  /// Batch build path: interns `v` into column `c`'s dictionary without
  /// appending a row (BatchCodecAppender resolves ids per column, then
  /// appends whole rows of pre-resolved ids via AppendRows).
  uint32_t InternValue(size_t c, const Value& v) { return dicts_[c].GetOrAdd(v); }

  /// Batch probe path: id of `v` in column `c`'s dictionary, or
  /// ValueDict::kNotFound.
  uint32_t FindValue(size_t c, const Value& v) const { return dicts_[c].Find(v); }

  /// Appends `nrows` build rows of pre-resolved ids, row-major
  /// (nrows * num_cols() ids).
  void AppendRows(const uint32_t* ids, size_t nrows) {
    ids_.Append(ids, nrows);
    num_rows_ += nrows;
  }

  /// Returns the row store's outstanding governor charge — for transient
  /// chunk-local codecs whose rows were merged into another codec.
  void ReleaseRowCharges() { ids_.ReleaseCharges(); }

  /// True when some build rows were flushed to the query's spill file; such
  /// a codec reads through a per-query temp file and cannot be shared.
  bool rows_on_disk() const { return ids_.on_disk(); }

  /// Releases the row store's charge and detaches it from the building
  /// query's governor, so the codec can be cached beyond the query
  /// (exec/recycler.hpp). Only valid when !rows_on_disk().
  void DetachRowCharges() { ids_.DetachCharges(); }

  /// Coarse resident-size estimate for recycler LRU accounting: 8 bytes per
  /// stored id (matching the governor's charge formula) plus a per-distinct-
  /// value allowance for the dictionaries.
  size_t ApproxBytes() const {
    size_t bytes = num_rows_ * dicts_.size() * 8;
    for (const ValueDict& d : dicts_) bytes += d.size() * 32;
    return bytes;
  }

  /// Merge phase of parallel pipeline drains: appends every build row of
  /// `part` (an unsealed chunk-local codec over the same key columns) into
  /// this codec, translating part-local dictionary ids into this codec's
  /// id spaces through lazy per-column translation arrays. Values are
  /// interned on first sight in part-row order, so merging chunks in
  /// chunk-index order reproduces the serial scan's id assignment exactly.
  void AppendTranslated(const KeyCodec& part);

  /// Packs pre-resolved per-column ids into a flat key. Valid after Seal()
  /// when !spilled(); every id must come from this codec's dictionaries.
  uint64_t PackIds(const uint32_t* ids) const {
    uint64_t key = 0;
    for (size_t c = 0; c < dicts_.size(); ++c) key |= uint64_t{ids[c]} << shifts_[c];
    return key;
  }

  /// Spill form of PackIds, for sealed codecs with spilled() layouts.
  void SpillFromIds(const uint32_t* ids, SmallByteKey* out) const {
    out->Clear();
    for (size_t c = 0; c < dicts_.size(); ++c) out->PushId(ids[c]);
  }

  /// Freezes dictionaries and chooses the packed layout.
  void Seal();

  /// Packed key of build row `i`. Valid after Seal() when !spilled().
  uint64_t PackedKey(size_t i) const {
    const uint32_t* ids = ids_.Row(i);
    uint64_t key = 0;
    for (size_t c = 0; c < dicts_.size(); ++c) key |= uint64_t{ids[c]} << shifts_[c];
    return key;
  }

  /// Spill key of build row `i`. Valid after Seal() when spilled().
  SmallByteKey SpillKey(size_t i) const {
    const uint32_t* ids = ids_.Row(i);
    SmallByteKey key;
    for (size_t c = 0; c < dicts_.size(); ++c) key.PushId(ids[c]);
    return key;
  }

  /// Probe-only encode of a foreign tuple. False iff some column value was
  /// never seen during build.
  bool TryEncode(const Tuple& t, const std::vector<size_t>& indices, uint64_t* out) const {
    uint64_t key = 0;
    for (size_t c = 0; c < dicts_.size(); ++c) {
      uint32_t id = dicts_[c].Find(t[indices[c]]);
      if (id == ValueDict::kNotFound) return false;
      key |= uint64_t{id} << shifts_[c];
    }
    *out = key;
    return true;
  }

  bool TryEncodeSpill(const Tuple& t, const std::vector<size_t>& indices,
                      SmallByteKey* out) const {
    out->Clear();
    for (size_t c = 0; c < dicts_.size(); ++c) {
      uint32_t id = dicts_[c].Find(t[indices[c]]);
      if (id == ValueDict::kNotFound) return false;
      out->PushId(id);
    }
    return true;
  }

  /// Appends the column Values of a packed key to `out`.
  void Decode(uint64_t key, Tuple* out) const {
    for (size_t c = 0; c < dicts_.size(); ++c) {
      out->push_back(dicts_[c].At(static_cast<uint32_t>((key >> shifts_[c]) & masks_[c])));
    }
  }
  void Decode(const SmallByteKey& key, Tuple* out) const {
    for (size_t c = 0; c < dicts_.size(); ++c) out->push_back(dicts_[c].At(key.IdAt(c)));
  }

  template <typename K>
  Tuple DecodeTuple(const K& key) const {
    Tuple t;
    t.reserve(dicts_.size());
    Decode(key, &t);
    return t;
  }

 private:
  std::vector<ValueDict> dicts_;
  // Row-major build-row ids (num_cols() per row) in a store that flushes to
  // the current query's spill file past the governor's soft watermark.
  SpilledU32Store ids_;
  std::vector<uint32_t> scratch_;  // one row of ids, assembled before Append
  std::vector<uint32_t> shifts_;   // per-column bit offset in the packed key
  std::vector<uint64_t> masks_;    // per-column id mask in the packed key
  size_t num_rows_ = 0;
  bool sealed_ = false;
  bool spilled_ = false;
};

/// Growable encoder for streaming deduplication (π, ∪, ∩, −): dictionaries
/// accept new values at any time, so each column gets a fixed 32-bit field.
/// Keys of up to two columns fit the flat uint64_t; wider keys spill.
class IncrementalKeyEncoder {
 public:
  IncrementalKeyEncoder() = default;
  explicit IncrementalKeyEncoder(size_t num_cols) : dicts_(num_cols) {}

  size_t num_cols() const { return dicts_.size(); }
  bool fits64() const { return dicts_.size() <= 2; }
  const ValueDict& dict(size_t col) const { return dicts_[col]; }

  /// Key of `t`'s columns `indices` (nullptr = all of `t`), growing the
  /// dictionaries as needed. Only valid when fits64().
  uint64_t Encode64(const Tuple& t, const std::vector<size_t>* indices) {
    uint64_t key = 0;
    for (size_t c = 0; c < dicts_.size(); ++c) {
      key |= uint64_t{dicts_[c].GetOrAdd(t[indices ? (*indices)[c] : c])} << (32 * c);
    }
    return key;
  }

  /// Spill form for keys of three or more columns.
  void EncodeSpill(const Tuple& t, const std::vector<size_t>* indices, SmallByteKey* out) {
    out->Clear();
    for (size_t c = 0; c < dicts_.size(); ++c) {
      out->PushId(dicts_[c].GetOrAdd(t[indices ? (*indices)[c] : c]));
    }
  }

  /// Batch path: interns `v` into column `c`'s (growable) dictionary.
  uint32_t InternValue(size_t c, const Value& v) { return dicts_[c].GetOrAdd(v); }

  /// Packs pre-resolved per-column ids into the fixed 32-bit-field layout.
  /// Only valid when fits64().
  uint64_t PackIds(const uint32_t* ids) const {
    uint64_t key = 0;
    for (size_t c = 0; c < dicts_.size(); ++c) key |= uint64_t{ids[c]} << (32 * c);
    return key;
  }

  /// Spill form of PackIds, for keys of three or more columns.
  void SpillFromIds(const uint32_t* ids, SmallByteKey* out) const {
    out->Clear();
    for (size_t c = 0; c < dicts_.size(); ++c) out->PushId(ids[c]);
  }

  /// Appends the column Values of an encoded key to `out`.
  void Decode(uint64_t key, Tuple* out) const {
    for (size_t c = 0; c < dicts_.size(); ++c) {
      out->push_back(dicts_[c].At(static_cast<uint32_t>(key >> (32 * c))));
    }
  }
  void Decode(const SmallByteKey& key, Tuple* out) const {
    for (size_t c = 0; c < dicts_.size(); ++c) out->push_back(dicts_[c].At(key.IdAt(c)));
  }

 private:
  std::vector<ValueDict> dicts_;
};

/// Interns flat keys into dense uint32 ids (candidate numbering, divisor
/// numbering, group numbering). Works for both key representations.
template <typename K>
using KeyInterner = FlatInterner<K, FlatKeyHash>;

/// Drop-in replacement for KeyInterner<uint64_t> when the codec's packed
/// keys are already dense ids (keys_are_dense_ids()): numbering is the
/// identity, so the hot loop performs no hashing at all. size() is the full
/// id space (dictionary size) rather than the number of keys seen.
struct DenseNumbering {
  static constexpr uint32_t kNotFound = UINT32_MAX;
  size_t n = 0;  // id space: dict(0).size()

  uint32_t Intern(uint64_t key) { return static_cast<uint32_t>(key); }
  uint32_t Find(uint64_t key) const { return static_cast<uint32_t>(key); }
  uint64_t At(uint32_t id) const { return id; }
  size_t size() const { return n; }
};

/// Typed views over a sealed codec, so algorithms can be written once and
/// instantiated for both the packed-64 and the spill representation.
struct PackedKeyView {
  using Key = uint64_t;
  const KeyCodec* codec;
  Key RowKey(size_t i) const { return codec->PackedKey(i); }
  bool TryEncode(const Tuple& t, const std::vector<size_t>& indices, Key* out) const {
    return codec->TryEncode(t, indices, out);
  }
  void Decode(const Key& key, Tuple* out) const { codec->Decode(key, out); }
};

struct SpillKeyView {
  using Key = SmallByteKey;
  const KeyCodec* codec;
  Key RowKey(size_t i) const { return codec->SpillKey(i); }
  bool TryEncode(const Tuple& t, const std::vector<size_t>& indices, Key* out) const {
    return codec->TryEncodeSpill(t, indices, out);
  }
  void Decode(const Key& key, Tuple* out) const { codec->Decode(key, out); }
};

/// Calls `f` with the view matching the sealed codec's representation.
template <typename F>
void WithKeyView(const KeyCodec& codec, F&& f) {
  if (codec.spilled()) {
    f(SpillKeyView{&codec});
  } else {
    f(PackedKeyView{&codec});
  }
}

/// Dense numbering of a sealed codec's build keys behind one non-template
/// interface: picks the identity (single dictionary column), packed-64, or
/// spill representation once at Build() time. Used where a branch per probe
/// is cheap enough (great divide, joins, grouping); the division algorithms
/// stay fully templated on the key representation instead.
class KeyNumbering {
 public:
  static constexpr uint32_t kNotFound = UINT32_MAX;

  /// Numbers the codec's build rows; ids are dense, in first-seen order.
  void Build(const KeyCodec& codec) {
    codec_ = &codec;
    dense_ = codec.keys_are_dense_ids();
    row_ids_.clear();
    row_ids_.reserve(codec.rows());
    if (dense_) {
      count_ = codec.dict(0).size();
      for (size_t i = 0; i < codec.rows(); ++i) {
        row_ids_.push_back(static_cast<uint32_t>(codec.PackedKey(i)));
      }
    } else if (!codec.spilled()) {
      interner64_.Reserve(codec.rows());
      for (size_t i = 0; i < codec.rows(); ++i) {
        row_ids_.push_back(interner64_.Intern(codec.PackedKey(i)));
      }
      count_ = interner64_.size();
    } else {
      for (size_t i = 0; i < codec.rows(); ++i) {
        row_ids_.push_back(interner_spill_.Intern(codec.SpillKey(i)));
      }
      count_ = interner_spill_.size();
    }
  }

  /// Dense id of build row `i`.
  const std::vector<uint32_t>& row_ids() const { return row_ids_; }
  /// Number of distinct keys.
  size_t count() const { return count_; }

  /// Dense id of a foreign tuple's key, or kNotFound if it cannot equal any
  /// built key.
  uint32_t Probe(const Tuple& t, const std::vector<size_t>& indices) const {
    if (dense_) return codec_->dict(0).Find(t[indices[0]]);
    if (!codec_->spilled()) {
      uint64_t key;
      return codec_->TryEncode(t, indices, &key) ? interner64_.Find(key) : kNotFound;
    }
    SmallByteKey key;
    return codec_->TryEncodeSpill(t, indices, &key) ? interner_spill_.Find(key) : kNotFound;
  }

  /// Batch-path probe: dense id for a key given as per-column codec
  /// dictionary ids (every id already resolved, no misses). BatchKeyProbe
  /// handles the miss detection before calling this.
  uint32_t ProbeIds(const uint32_t* ids) const {
    if (dense_) return ids[0];
    if (!codec_->spilled()) return interner64_.Find(codec_->PackIds(ids));
    SmallByteKey key;
    codec_->SpillFromIds(ids, &key);
    return interner_spill_.Find(key);
  }

  /// Decodes key `id` back into a Tuple.
  Tuple KeyTuple(uint32_t id) const {
    if (dense_) return codec_->DecodeTuple(uint64_t{id});
    if (!codec_->spilled()) return codec_->DecodeTuple(interner64_.At(id));
    return codec_->DecodeTuple(interner_spill_.At(id));
  }

 private:
  const KeyCodec* codec_ = nullptr;
  bool dense_ = false;
  size_t count_ = 0;
  std::vector<uint32_t> row_ids_;
  KeyInterner<uint64_t> interner64_;
  KeyInterner<SmallByteKey> interner_spill_;
};

}  // namespace quotient
