#pragma once

// Cross-query artifact recycler (docs/recycler.md).
//
// The plan cache (api/database.hpp) amortizes compilation, but a repeated
// point query still pays the dominant remaining cost every execution:
// division, join, and grouping rebuild their hash tables, codec state, and
// divisor encodings from scratch even when the build side is an unchanged
// base table. The ArtifactRecycler is a Database-level, mutex-sharded LRU
// of those built sink states — divisor build tables for the small divides
// and the great divides, hash/equi/semi join build sides, and grouping
// results — held behind shared_ptr<const ...> so concurrent sessions share
// one build.
//
// KEYING. Entries are keyed on a plan-fragment fingerprint composed by the
// planner (opt/planner.cpp): a type-tagged serialization of the logical
// subtree feeding the build side, plus the pinned snapshot's per-table data
// versions (plan/catalog.hpp) for every base table the fragment scans.
// Fragments containing VALUES literals or unbound '?' parameter slots are
// not recyclable (their content is not captured by the serialization). DDL
// bumps a table's data version, so a stale artifact simply stops being
// addressable; Database::Ddl additionally calls InvalidateTables for
// memory hygiene. Execution mode is deliberately NOT part of the key: the
// chunk-ordered parallel merges make build state bit-identical to serial
// at every thread count (docs/parallel_execution.md).
//
// BUILD-ONCE. GetOrBuild mirrors Catalog::Encoding's promise/shared_future
// discipline: the first query to miss becomes the builder, concurrent
// requesters for the same key wait (polling their own governor, so
// cancellation and deadlines still land) and adopt the published artifact.
// A failed or rejected build publishes nullptr and erases the in-flight
// entry — the cache is never poisoned, and waiters fall back to private
// builds. The recycler.lookup / recycler.publish fault sites make both
// paths deterministically testable.
//
// MEMORY. Cached artifacts are accounted against the recycler's own byte
// budget (DatabaseOptions::recycler_memory_bytes), not any query's: on
// publication the builder detaches the build's governor charges
// (SpilledU32Store::DetachCharges) and the artifact's ApproxBytes joins a
// global LRU total; eviction pops least-recently-used entries (own shard
// first, then a cross-shard sweep) until the total fits. Builds that
// spilled to disk are never published — their row reads go through a
// per-query temp file and a mutable page cache. A query adopting a cached
// artifact performs no Appends and therefore no Charges against its own
// budget.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/tuple.hpp"
#include "exec/key_codec.hpp"
#include "exec/spill.hpp"

namespace quotient {

/// Base of every cached build state. Concrete artifacts are immutable after
/// construction; the recycler shares them as shared_ptr<const ...>.
struct RecycledArtifact {
  virtual ~RecycledArtifact() = default;
  /// Coarse resident size, for the LRU byte budget.
  virtual size_t ApproxBytes() const = 0;
  /// True when any backing store flushed rows to the building query's spill
  /// file — such state must never be shared (see header comment).
  virtual bool SpilledToDisk() const = 0;
  /// Hands the build's governor charges back before publication: the cached
  /// copy is accounted by the recycler's budget, not the building query's.
  /// Runs on the builder thread, with the builder's context current.
  virtual void DetachBuildCharges() = 0;
};

using ArtifactPtr = std::shared_ptr<const RecycledArtifact>;

/// Coarse per-tuple size estimate shared by the artifact types.
inline size_t ApproxTupleBytes(const std::vector<Tuple>& rows) {
  size_t bytes = 0;
  for (const Tuple& t : rows) bytes += 24 + t.size() * 40;
  return bytes;
}

/// Divisor build side of the small divides (exec/exec_divide.cpp): the
/// sealed divisor key codec plus its dense key numbering. Shared across all
/// six division algorithms — the algorithm choice is not part of the key.
struct DivisionBuildArtifact : RecycledArtifact {
  KeyCodec codec;        // sealed divisor key codec
  KeyNumbering numbers;  // built in place against `codec`

  size_t ApproxBytes() const override {
    return codec.ApproxBytes() + numbers.row_ids().size() * 4;
  }
  bool SpilledToDisk() const override { return codec.rows_on_disk(); }
  void DetachBuildCharges() override { codec.DetachRowCharges(); }
};

/// Dividend probe state of the small divides: the sealed dividend codec and
/// the per-row divisor-key column. A probe hit skips BOTH drains (the
/// divisor drain too — divisor_count carries the only divisor-side fact the
/// algorithms need beyond what row_b encodes).
struct DivisionProbeArtifact : RecycledArtifact {
  KeyCodec a_codec;          // sealed dividend key codec
  SpilledU32Store row_b{1};  // per dividend row: divisor key id (or miss)
  size_t divisor_count = 0;  // distinct divisor keys at build time

  size_t ApproxBytes() const override {
    return a_codec.ApproxBytes() + row_b.rows() * 8;
  }
  bool SpilledToDisk() const override {
    return a_codec.rows_on_disk() || row_b.on_disk();
  }
  void DetachBuildCharges() override {
    a_codec.DetachRowCharges();
    row_b.DetachCharges();
  }
};

/// Divisor-side build state of the great divides (exec/exec_great_divide.cpp):
/// both divisor codecs, their numberings, and the per-group membership
/// structure derived from them.
struct GreatDivideBuildArtifact : RecycledArtifact {
  KeyCodec b_codec;  // divisor B-attribute codec
  KeyCodec c_codec;  // divisor C-attribute codec
  KeyNumbering b;
  KeyNumbering c;
  std::vector<uint32_t> group_sizes;              // per c-id distinct b count
  std::vector<std::vector<uint32_t>> member_of;   // b-id -> c-ids containing it

  size_t ApproxBytes() const override {
    size_t bytes = b_codec.ApproxBytes() + c_codec.ApproxBytes();
    bytes += (b.row_ids().size() + c.row_ids().size() + group_sizes.size()) * 4;
    for (const auto& groups : member_of) bytes += 24 + groups.size() * 4;
    return bytes;
  }
  bool SpilledToDisk() const override {
    return b_codec.rows_on_disk() || c_codec.rows_on_disk();
  }
  void DetachBuildCharges() override {
    b_codec.DetachRowCharges();
    c_codec.DetachRowCharges();
  }
};

/// Dividend probe state of the great divides. Unlike the small divide —
/// where divisor_count is the only divisor-side fact the algorithms need —
/// both great-divide algorithms read the full divisor-side state, so the
/// probe artifact pins the build artifact it was probed against: a probe
/// hit skips both drains.
struct GreatDivideProbeArtifact : RecycledArtifact {
  KeyCodec a_codec;
  KeyNumbering a;
  SpilledU32Store row_b{1};  // per dividend row: divisor b-id (or miss)
  std::shared_ptr<const GreatDivideBuildArtifact> build;  // probed-against state
  // Set (aliasing `build`) iff the divisor side was built privately rather
  // than adopted from the cache: publication must detach ITS charges too,
  // and its bytes are resident here rather than under the build key.
  std::shared_ptr<GreatDivideBuildArtifact> owned_build;

  size_t ApproxBytes() const override {
    size_t bytes = a_codec.ApproxBytes() + a.row_ids().size() * 4 + row_b.rows() * 8;
    if (owned_build) bytes += owned_build->ApproxBytes();
    return bytes;
  }
  bool SpilledToDisk() const override {
    return a_codec.rows_on_disk() || row_b.on_disk() || (build && build->SpilledToDisk());
  }
  void DetachBuildCharges() override {
    a_codec.DetachRowCharges();
    row_b.DetachCharges();
    if (owned_build) owned_build->DetachBuildCharges();
  }
};

/// Build side of the hash joins (exec/exec_join.cpp). One shape serves
/// natural, equi, semi, and anti joins: the key codec, its numbering, and
/// the per-key row buckets (payload rows for natural joins, full right rows
/// for equi joins, empty for semi/anti which only probe existence).
struct JoinBuildArtifact : RecycledArtifact {
  KeyCodec codec;
  KeyNumbering numbering;
  std::vector<std::vector<Tuple>> buckets;  // key id -> build rows
  bool right_empty = false;                 // degenerate no-key semi-join path
  size_t extra_charge = 0;                  // bucket bytes charged by the build

  size_t ApproxBytes() const override {
    size_t bytes = codec.ApproxBytes() + numbering.row_ids().size() * 4;
    for (const auto& bucket : buckets) bytes += 24 + ApproxTupleBytes(bucket);
    return bytes;
  }
  bool SpilledToDisk() const override { return codec.rows_on_disk(); }
  void DetachBuildCharges() override;  // releases extra_charge too
};

/// Grouping build state (exec/exec_agg.cpp). Aggregation's build state IS
/// its output, so the artifact is simply the finished result rows.
struct GroupingArtifact : RecycledArtifact {
  std::vector<Tuple> rows;
  size_t extra_charge = 0;  // group-state bytes charged by the build

  size_t ApproxBytes() const override { return ApproxTupleBytes(rows); }
  bool SpilledToDisk() const override { return false; }
  void DetachBuildCharges() override;
};

/// Aggregate counters, surfaced through Database::recycler_stats() and (per
/// query) ExecProfile. Every GetOrBuild call counts as exactly one hit
/// (served from cache, or adopted from a concurrent build) or one miss
/// (built, whether or not the result was published).
struct RecyclerStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t published = 0;    // builds inserted into the cache
  size_t rejected = 0;     // builds not cached (spilled / over budget)
  size_t evictions = 0;
  size_t invalidated = 0;  // entries dropped by InvalidateTables
  size_t bytes = 0;        // resident artifact bytes
  size_t entries = 0;      // resident artifact count
};

/// The shared recycler. All methods are thread-safe.
class ArtifactRecycler {
 public:
  using Builder = std::function<std::shared_ptr<RecycledArtifact>()>;

  /// `memory_budget_bytes` bounds the resident artifact total; artifacts
  /// larger than the whole budget are never cached.
  explicit ArtifactRecycler(size_t memory_budget_bytes);

  /// Returns the artifact for `key`, running `builder` on a miss.
  /// Build-once: concurrent callers with the same key wait for the first
  /// builder and adopt its result. Returns nullptr only to a waiter whose
  /// builder failed or whose result was rejected — the caller then builds
  /// privately, without consulting the recycler again. `tables` is the
  /// entry's invalidation domain (base tables the fragment scans).
  ArtifactPtr GetOrBuild(const std::string& key,
                         const std::vector<std::string>& tables,
                         const Builder& builder);

  /// Drops every entry referencing any of `tables`. Version-bearing keys
  /// already make stale entries unaddressable; this reclaims their memory
  /// promptly on DDL.
  void InvalidateTables(const std::vector<std::string>& tables);

  /// Drops everything (benchmarks' cold-start reset).
  void Clear();

  RecyclerStats stats() const;
  size_t memory_budget_bytes() const { return budget_; }

 private:
  struct Entry {
    std::string key;
    ArtifactPtr artifact;
    size_t bytes = 0;
    std::vector<std::string> tables;
  };
  using EntryList = std::list<Entry>;
  struct Shard {
    mutable std::mutex mutex;
    EntryList lru;  // front = most recently used
    std::unordered_map<std::string, EntryList::iterator> index;
    std::unordered_map<std::string, std::shared_future<ArtifactPtr>> building;
  };

  static constexpr size_t kShards = 8;

  size_t ShardIndex(const std::string& key) const {
    return std::hash<std::string>{}(key) % kShards;
  }

  /// Evicts LRU entries until the global total fits the budget, starting at
  /// `start_shard` and sweeping the others one lock at a time. Never evicts
  /// the entry named `protect` (the just-published one).
  void EnforceBudget(size_t start_shard, const std::string& protect);

  const size_t budget_;
  Shard shards_[kShards];
  std::atomic<size_t> bytes_{0};
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
  std::atomic<size_t> published_{0};
  std::atomic<size_t> rejected_{0};
  std::atomic<size_t> evictions_{0};
  std::atomic<size_t> invalidated_{0};
};

/// Planner-composed recycling directive attached to a blocking operator
/// (opt/planner.cpp): the shared recycler plus the operator's cache keys.
/// build_key addresses the build-side artifact (divisor table, join build
/// side, great-divide divisor state); probe_key, where meaningful,
/// addresses the full probe-side artifact that additionally captures the
/// dividend drain. An empty key means that state is not recyclable (VALUES
/// leaves, '?' parameter slots, or no recycler configured).
struct RecycleSpec {
  std::shared_ptr<ArtifactRecycler> recycler;
  std::string build_key;
  std::string probe_key;
  std::vector<std::string> tables;  // invalidation domain of both keys
};

}  // namespace quotient
