#pragma once

#include <memory>

#include "algebra/ops.hpp"
#include "exec/iterator.hpp"
#include "exec/key_codec.hpp"
#include "exec/recycler.hpp"

namespace quotient {

/// Hash aggregation implementing GγF: online, key-encoded grouping. Group
/// keys are incrementally dictionary-encoded (IncrementalKeyEncoder) and
/// interned to dense group numbers; aggregate states are accumulated in a
/// flat array with the same AggState machinery as the reference GroupBy, so
/// results agree by construction.
class HashAggregateIterator : public Iterator {
 public:
  HashAggregateIterator(IterPtr child, std::vector<std::string> group_names,
                        std::vector<AggSpec> aggs);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  bool NextBatch(Batch* out) override;
  void Close() override;
  const char* name() const override { return "HashAggregate"; }
  std::vector<Iterator*> InputIterators() override { return {child_.get()}; }
  std::vector<size_t> BlockingInputs() override { return {0}; }

  /// Attaches the planner-composed recycling directive (exec/recycler.hpp).
  /// Aggregation's build state IS its output, so a hit skips the child
  /// entirely and streams the cached result rows.
  void SetRecycle(RecycleSpec spec) { recycle_ = std::move(spec); }

 private:
  std::shared_ptr<GroupingArtifact> BuildArtifact();

  IterPtr child_;
  std::vector<std::string> group_names_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  std::vector<size_t> group_indices_;
  std::vector<size_t> arg_indices_;
  RecycleSpec recycle_;
  std::shared_ptr<const GroupingArtifact> grouping_;  // finished result rows
  size_t position_ = 0;
};

}  // namespace quotient
