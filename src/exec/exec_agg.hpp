#pragma once

#include <map>

#include "algebra/ops.hpp"
#include "exec/iterator.hpp"

namespace quotient {

/// Hash aggregation implementing GγF (materializes groups on Open). The
/// heavy lifting is shared with the reference GroupBy; this operator exists
/// so grouped plans run inside the Volcano engine with row accounting.
class HashAggregateIterator : public Iterator {
 public:
  HashAggregateIterator(IterPtr child, std::vector<std::string> group_names,
                        std::vector<AggSpec> aggs);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const char* name() const override { return "HashAggregate"; }
  std::vector<Iterator*> InputIterators() override { return {child_.get()}; }

 private:
  IterPtr child_;
  std::vector<std::string> group_names_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  std::vector<Tuple> results_;
  size_t position_ = 0;
};

}  // namespace quotient
