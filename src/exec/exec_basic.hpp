#pragma once

#include <unordered_set>

#include "algebra/predicate.hpp"
#include "exec/batch.hpp"
#include "exec/iterator.hpp"
#include "exec/key_codec.hpp"

namespace quotient {

/// Non-owning shared_ptr view of a caller-owned Relation, for wiring scans
/// in convenience wrappers (ExecDivide & friends) without deep-copying the
/// relation. The caller must keep `r` alive while the iterator lives.
inline std::shared_ptr<const Relation> BorrowRelation(const Relation& r) {
  return std::shared_ptr<const Relation>(std::shared_ptr<const Relation>(), &r);
}

/// Scans a materialized relation (base table or intermediate). With a
/// TableEncoding attached (the catalog cache, or an explicitly shared
/// encoding), NextBatch() emits dictionary-id columns by copying id spans;
/// otherwise batches are zero-copy row views into the relation's storage.
class RelationScan : public Iterator {
 public:
  explicit RelationScan(std::shared_ptr<const Relation> relation,
                        TableEncodingPtr encoding = nullptr)
      : relation_(std::move(relation)), encoding_(std::move(encoding)) {}

  const Schema& schema() const override { return relation_->schema(); }
  void Open() override {
    ResetCount();
    position_ = 0;
  }
  bool Next(Tuple* out) override;
  const Tuple* NextRef() override {
    if (position_ >= relation_->size()) return nullptr;
    CountRow();
    return &relation_->tuples()[position_++];
  }
  bool NextBatch(Batch* out) override;
  void Close() override {}
  const char* name() const override { return "Scan"; }
  std::vector<Iterator*> InputIterators() override { return {}; }
  size_t EstimatedRows() const override { return relation_->size(); }

  /// Morsel interface for the pipeline executor (exec/pipeline.hpp): total
  /// storage rows, and a positionless span read. FillSpan is const and
  /// touches only the immutable relation/encoding, so concurrent workers
  /// may read disjoint (or even overlapping) spans. Does not count rows —
  /// the executor credits the bypassed chain once per pipeline.
  size_t TotalRows() const { return relation_->size(); }
  void FillSpan(size_t begin, size_t count, Batch* out) const;

 private:
  std::shared_ptr<const Relation> relation_;
  TableEncodingPtr encoding_;
  size_t position_ = 0;
};

/// σ: emits child tuples satisfying the predicate.
///
/// Batched: predicates are evaluated into a selection vector over the
/// child's batch. Conjuncts that reference a single column are evaluated
/// once per distinct dictionary value (a verdict byte per id), so filtering
/// an encoded column is one array load per row; remaining conjuncts fall
/// back to row-at-a-time evaluation.
class FilterIterator : public Iterator {
 public:
  FilterIterator(IterPtr child, ExprPtr predicate);

  const Schema& schema() const override { return child_->schema(); }
  void Open() override;
  bool Next(Tuple* out) override;
  const Tuple* NextRef() override;
  bool NextBatch(Batch* out) override;
  void Close() override { child_->Close(); }
  const char* name() const override { return "Filter"; }
  std::vector<Iterator*> InputIterators() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 private:
  /// A conjunct referencing exactly one column, with its per-dictionary
  /// verdict cache (filled lazily when a batch binds the dictionary).
  struct ColumnConjunct {
    ExprPtr expr;
    size_t col = 0;
    Schema col_schema;                 // one-attribute schema for evaluation
    const ValueDict* dict = nullptr;   // dictionary the verdicts are for
    std::vector<uint8_t> pass;         // verdict per dictionary id
  };

  bool RowPasses(const Batch& batch, uint32_t row);

  IterPtr child_;
  ExprPtr predicate_;
  std::unique_ptr<BoundExpr> bound_;
  // Batch path state.
  std::vector<ColumnConjunct> column_conjuncts_;
  ExprPtr residual_;  // conjunction of multi-column conjuncts (may be null)
  std::unique_ptr<BoundExpr> residual_bound_;
  Tuple scratch_row_;
  Tuple scratch_cell_;
};

/// π with duplicate elimination (set semantics).
class ProjectIterator : public Iterator {
 public:
  ProjectIterator(IterPtr child, std::vector<std::string> columns);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  bool NextBatch(Batch* out) override;
  void Close() override;
  const char* name() const override { return "Project"; }
  std::vector<Iterator*> InputIterators() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 private:
  IterPtr child_;
  Schema schema_;
  std::vector<size_t> indices_;
  // Streaming dedup on incrementally encoded keys (see key_codec.hpp). The
  // batch path resolves keys through BatchIncrementalKeyer into the SAME
  // encoder id space, so both paths dedup identically.
  IncrementalKeyEncoder encoder_;
  std::unordered_set<uint64_t, FlatKeyHash> seen64_;
  std::unordered_set<SmallByteKey, FlatKeyHash> seen_spill_;
  std::unique_ptr<BatchIncrementalKeyer> keyer_;
  Batch in_batch_;
  std::vector<uint64_t> keys64_;
  std::vector<SmallByteKey> keys_spill_;
};

/// ρ: pass-through with a renamed schema.
class RenameIterator : public Iterator {
 public:
  RenameIterator(IterPtr child, std::vector<std::pair<std::string, std::string>> renames);

  const Schema& schema() const override { return schema_; }
  void Open() override {
    ResetCount();
    child_->Open();
  }
  bool Next(Tuple* out) override;
  const Tuple* NextRef() override {
    const Tuple* t = child_->NextRef();
    if (t != nullptr) CountRow();
    return t;
  }
  bool NextBatch(Batch* out) override {
    // Renaming is schema-only; batches pass through untouched.
    if (!child_->NextBatch(out)) return false;
    CountRows(out->ActiveRows());
    return true;
  }
  void Close() override { child_->Close(); }
  const char* name() const override { return "Rename"; }
  std::vector<Iterator*> InputIterators() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 private:
  IterPtr child_;
  Schema schema_;
};

/// ∪ with duplicate elimination.
class UnionIterator : public Iterator {
 public:
  UnionIterator(IterPtr left, IterPtr right);

  const Schema& schema() const override { return left_->schema(); }
  void Open() override;
  bool Next(Tuple* out) override;
  bool NextBatch(Batch* out) override;
  void Close() override;
  const char* name() const override { return "Union"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }
  size_t EstimatedRows() const override {
    return left_->EstimatedRows() + right_->EstimatedRows();
  }

 private:
  bool NextAligned(Tuple* out);
  bool EmitFresh(const Batch& in, const std::vector<size_t>* col_map, Batch* out);

  IterPtr left_;
  IterPtr right_;
  std::vector<size_t> right_reorder_;  // empty when schemas align positionally
  bool on_right_ = false;
  // Streaming dedup on incrementally encoded keys.
  IncrementalKeyEncoder encoder_;
  std::unordered_set<uint64_t, FlatKeyHash> seen64_;
  std::unordered_set<SmallByteKey, FlatKeyHash> seen_spill_;
  std::unique_ptr<BatchIncrementalKeyer> keyer_;
  Batch in_batch_;
  std::vector<uint64_t> keys64_;
  std::vector<SmallByteKey> keys_spill_;
};

/// ∩ (hash build on the right input).
class IntersectIterator : public Iterator {
 public:
  IntersectIterator(IterPtr left, IterPtr right);

  const Schema& schema() const override { return left_->schema(); }
  void Open() override;
  bool Next(Tuple* out) override;
  bool NextBatch(Batch* out) override;
  void Close() override;
  const char* name() const override { return "Intersect"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }
  std::vector<size_t> BlockingInputs() override { return {1}; }
  size_t EstimatedRows() const override { return left_->EstimatedRows(); }

 private:
  IterPtr left_;
  IterPtr right_;
  std::vector<size_t> right_reorder_;
  // Build and probe share one incremental encoder: equal tuples get equal
  // flat keys, so membership and once-only emission are key-set lookups.
  IncrementalKeyEncoder encoder_;
  std::unordered_set<uint64_t, FlatKeyHash> build64_, emitted64_;
  std::unordered_set<SmallByteKey, FlatKeyHash> build_spill_, emitted_spill_;
  std::unique_ptr<BatchIncrementalKeyer> keyer_;
  std::vector<uint64_t> keys64_;
  std::vector<SmallByteKey> keys_spill_;
};

/// − (hash build on the right input).
class DifferenceIterator : public Iterator {
 public:
  DifferenceIterator(IterPtr left, IterPtr right);

  const Schema& schema() const override { return left_->schema(); }
  void Open() override;
  bool Next(Tuple* out) override;
  bool NextBatch(Batch* out) override;
  void Close() override;
  const char* name() const override { return "Difference"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }
  std::vector<size_t> BlockingInputs() override { return {1}; }
  size_t EstimatedRows() const override { return left_->EstimatedRows(); }

 private:
  IterPtr left_;
  IterPtr right_;
  std::vector<size_t> right_reorder_;
  IncrementalKeyEncoder encoder_;
  std::unordered_set<uint64_t, FlatKeyHash> build64_, emitted64_;
  std::unordered_set<SmallByteKey, FlatKeyHash> build_spill_, emitted_spill_;
  std::unique_ptr<BatchIncrementalKeyer> keyer_;
  std::vector<uint64_t> keys64_;
  std::vector<SmallByteKey> keys_spill_;
};

/// × (right side materialized).
class CrossProductIterator : public Iterator {
 public:
  CrossProductIterator(IterPtr left, IterPtr right);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const char* name() const override { return "CrossProduct"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }
  std::vector<size_t> BlockingInputs() override { return {1}; }

 private:
  IterPtr left_;
  IterPtr right_;
  Schema schema_;
  std::vector<Tuple> right_rows_;
  Tuple current_left_;
  bool have_left_ = false;
  size_t right_pos_ = 0;
};

/// Shared build-side helper for ∩ / −: drains `right` into an encoded key
/// set (mode-aware: tuples in ExecMode::kTuple, batches otherwise).
void BuildKeySet(Iterator& right, const std::vector<size_t>& right_reorder,
                 IncrementalKeyEncoder& encoder,
                 std::unordered_set<uint64_t, FlatKeyHash>& set64,
                 std::unordered_set<SmallByteKey, FlatKeyHash>& set_spill);

}  // namespace quotient
