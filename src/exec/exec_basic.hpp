#pragma once

#include <unordered_set>

#include "algebra/predicate.hpp"
#include "exec/iterator.hpp"
#include "exec/key_codec.hpp"

namespace quotient {

/// Non-owning shared_ptr view of a caller-owned Relation, for wiring scans
/// in convenience wrappers (ExecDivide & friends) without deep-copying the
/// relation. The caller must keep `r` alive while the iterator lives.
inline std::shared_ptr<const Relation> BorrowRelation(const Relation& r) {
  return std::shared_ptr<const Relation>(std::shared_ptr<const Relation>(), &r);
}

/// Scans a materialized relation (base table or intermediate).
class RelationScan : public Iterator {
 public:
  explicit RelationScan(std::shared_ptr<const Relation> relation)
      : relation_(std::move(relation)) {}

  const Schema& schema() const override { return relation_->schema(); }
  void Open() override {
    ResetCount();
    position_ = 0;
  }
  bool Next(Tuple* out) override;
  const Tuple* NextRef() override {
    if (position_ >= relation_->size()) return nullptr;
    CountRow();
    return &relation_->tuples()[position_++];
  }
  void Close() override {}
  const char* name() const override { return "Scan"; }
  std::vector<Iterator*> InputIterators() override { return {}; }
  size_t EstimatedRows() const override { return relation_->size(); }

 private:
  std::shared_ptr<const Relation> relation_;
  size_t position_ = 0;
};

/// σ: emits child tuples satisfying the predicate.
class FilterIterator : public Iterator {
 public:
  FilterIterator(IterPtr child, ExprPtr predicate);

  const Schema& schema() const override { return child_->schema(); }
  void Open() override;
  bool Next(Tuple* out) override;
  const Tuple* NextRef() override;
  void Close() override { child_->Close(); }
  const char* name() const override { return "Filter"; }
  std::vector<Iterator*> InputIterators() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 private:
  IterPtr child_;
  ExprPtr predicate_;
  std::unique_ptr<BoundExpr> bound_;
};

/// π with duplicate elimination (set semantics).
class ProjectIterator : public Iterator {
 public:
  ProjectIterator(IterPtr child, std::vector<std::string> columns);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const char* name() const override { return "Project"; }
  std::vector<Iterator*> InputIterators() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 private:
  IterPtr child_;
  Schema schema_;
  std::vector<size_t> indices_;
  // Streaming dedup on incrementally encoded keys (see key_codec.hpp).
  IncrementalKeyEncoder encoder_;
  std::unordered_set<uint64_t, FlatKeyHash> seen64_;
  std::unordered_set<SmallByteKey, FlatKeyHash> seen_spill_;
};

/// ρ: pass-through with a renamed schema.
class RenameIterator : public Iterator {
 public:
  RenameIterator(IterPtr child, std::vector<std::pair<std::string, std::string>> renames);

  const Schema& schema() const override { return schema_; }
  void Open() override {
    ResetCount();
    child_->Open();
  }
  bool Next(Tuple* out) override;
  const Tuple* NextRef() override {
    const Tuple* t = child_->NextRef();
    if (t != nullptr) CountRow();
    return t;
  }
  void Close() override { child_->Close(); }
  const char* name() const override { return "Rename"; }
  std::vector<Iterator*> InputIterators() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 private:
  IterPtr child_;
  Schema schema_;
};

/// ∪ with duplicate elimination.
class UnionIterator : public Iterator {
 public:
  UnionIterator(IterPtr left, IterPtr right);

  const Schema& schema() const override { return left_->schema(); }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const char* name() const override { return "Union"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }
  size_t EstimatedRows() const override {
    return left_->EstimatedRows() + right_->EstimatedRows();
  }

 private:
  bool NextAligned(Tuple* out);

  IterPtr left_;
  IterPtr right_;
  std::vector<size_t> right_reorder_;  // empty when schemas align positionally
  bool on_right_ = false;
  // Streaming dedup on incrementally encoded keys.
  IncrementalKeyEncoder encoder_;
  std::unordered_set<uint64_t, FlatKeyHash> seen64_;
  std::unordered_set<SmallByteKey, FlatKeyHash> seen_spill_;
};

/// ∩ (hash build on the right input).
class IntersectIterator : public Iterator {
 public:
  IntersectIterator(IterPtr left, IterPtr right);

  const Schema& schema() const override { return left_->schema(); }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const char* name() const override { return "Intersect"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }
  size_t EstimatedRows() const override { return left_->EstimatedRows(); }

 private:
  IterPtr left_;
  IterPtr right_;
  std::vector<size_t> right_reorder_;
  // Build and probe share one incremental encoder: equal tuples get equal
  // flat keys, so membership and once-only emission are key-set lookups.
  IncrementalKeyEncoder encoder_;
  std::unordered_set<uint64_t, FlatKeyHash> build64_, emitted64_;
  std::unordered_set<SmallByteKey, FlatKeyHash> build_spill_, emitted_spill_;
};

/// − (hash build on the right input).
class DifferenceIterator : public Iterator {
 public:
  DifferenceIterator(IterPtr left, IterPtr right);

  const Schema& schema() const override { return left_->schema(); }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const char* name() const override { return "Difference"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }
  size_t EstimatedRows() const override { return left_->EstimatedRows(); }

 private:
  IterPtr left_;
  IterPtr right_;
  std::vector<size_t> right_reorder_;
  IncrementalKeyEncoder encoder_;
  std::unordered_set<uint64_t, FlatKeyHash> build64_, emitted64_;
  std::unordered_set<SmallByteKey, FlatKeyHash> build_spill_, emitted_spill_;
};

/// × (right side materialized).
class CrossProductIterator : public Iterator {
 public:
  CrossProductIterator(IterPtr left, IterPtr right);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const char* name() const override { return "CrossProduct"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }

 private:
  IterPtr left_;
  IterPtr right_;
  Schema schema_;
  std::vector<Tuple> right_rows_;
  Tuple current_left_;
  bool have_left_ = false;
  size_t right_pos_ = 0;
};

}  // namespace quotient
