#pragma once

#include <unordered_set>

#include "algebra/predicate.hpp"
#include "exec/iterator.hpp"

namespace quotient {

/// Scans a materialized relation (base table or intermediate).
class RelationScan : public Iterator {
 public:
  explicit RelationScan(std::shared_ptr<const Relation> relation)
      : relation_(std::move(relation)) {}

  const Schema& schema() const override { return relation_->schema(); }
  void Open() override {
    ResetCount();
    position_ = 0;
  }
  bool Next(Tuple* out) override;
  void Close() override {}
  const char* name() const override { return "Scan"; }
  std::vector<Iterator*> InputIterators() override { return {}; }

 private:
  std::shared_ptr<const Relation> relation_;
  size_t position_ = 0;
};

/// σ: emits child tuples satisfying the predicate.
class FilterIterator : public Iterator {
 public:
  FilterIterator(IterPtr child, ExprPtr predicate);

  const Schema& schema() const override { return child_->schema(); }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override { child_->Close(); }
  const char* name() const override { return "Filter"; }
  std::vector<Iterator*> InputIterators() override { return {child_.get()}; }

 private:
  IterPtr child_;
  ExprPtr predicate_;
  std::unique_ptr<BoundExpr> bound_;
};

/// π with duplicate elimination (set semantics).
class ProjectIterator : public Iterator {
 public:
  ProjectIterator(IterPtr child, std::vector<std::string> columns);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const char* name() const override { return "Project"; }
  std::vector<Iterator*> InputIterators() override { return {child_.get()}; }

 private:
  IterPtr child_;
  Schema schema_;
  std::vector<size_t> indices_;
  std::unordered_set<Tuple, TupleHash, TupleEq> seen_;
};

/// ρ: pass-through with a renamed schema.
class RenameIterator : public Iterator {
 public:
  RenameIterator(IterPtr child, std::vector<std::pair<std::string, std::string>> renames);

  const Schema& schema() const override { return schema_; }
  void Open() override {
    ResetCount();
    child_->Open();
  }
  bool Next(Tuple* out) override;
  void Close() override { child_->Close(); }
  const char* name() const override { return "Rename"; }
  std::vector<Iterator*> InputIterators() override { return {child_.get()}; }

 private:
  IterPtr child_;
  Schema schema_;
};

/// ∪ with duplicate elimination.
class UnionIterator : public Iterator {
 public:
  UnionIterator(IterPtr left, IterPtr right);

  const Schema& schema() const override { return left_->schema(); }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const char* name() const override { return "Union"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }

 private:
  bool NextAligned(Tuple* out);

  IterPtr left_;
  IterPtr right_;
  std::vector<size_t> right_reorder_;  // empty when schemas align positionally
  bool on_right_ = false;
  std::unordered_set<Tuple, TupleHash, TupleEq> seen_;
};

/// ∩ (hash build on the right input).
class IntersectIterator : public Iterator {
 public:
  IntersectIterator(IterPtr left, IterPtr right);

  const Schema& schema() const override { return left_->schema(); }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const char* name() const override { return "Intersect"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }

 private:
  IterPtr left_;
  IterPtr right_;
  std::vector<size_t> right_reorder_;
  std::unordered_set<Tuple, TupleHash, TupleEq> build_;
  std::unordered_set<Tuple, TupleHash, TupleEq> emitted_;
};

/// − (hash build on the right input).
class DifferenceIterator : public Iterator {
 public:
  DifferenceIterator(IterPtr left, IterPtr right);

  const Schema& schema() const override { return left_->schema(); }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const char* name() const override { return "Difference"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }

 private:
  IterPtr left_;
  IterPtr right_;
  std::vector<size_t> right_reorder_;
  std::unordered_set<Tuple, TupleHash, TupleEq> build_;
  std::unordered_set<Tuple, TupleHash, TupleEq> emitted_;
};

/// × (right side materialized).
class CrossProductIterator : public Iterator {
 public:
  CrossProductIterator(IterPtr left, IterPtr right);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const char* name() const override { return "CrossProduct"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }

 private:
  IterPtr left_;
  IterPtr right_;
  Schema schema_;
  std::vector<Tuple> right_rows_;
  Tuple current_left_;
  bool have_left_ = false;
  size_t right_pos_ = 0;
};

}  // namespace quotient
