#pragma once

// Batched columnar execution (see docs/batched_execution.md).
//
// A Batch carries ~1024 rows between operators as columns of uint32_t
// dictionary ids (plus a Value spill representation for attributes that are
// not dictionary-encoded), so the hot operators — division, great divide,
// joins, grouping, deduplication — run tight per-batch array loops instead
// of one virtual Next() call per tuple. Dictionary ids come from per-table
// column dictionaries (TableEncoding, cached by plan/catalog), and batch-
// level key packing reuses the key_codec machinery of PR 1: translation
// arrays map a table dictionary's ids straight into an operator's KeyCodec /
// IncrementalKeyEncoder id space, replacing a Value hash per row with an
// array load per row.
//
// Three execution disciplines coexist behind the Iterator interface:
//   ExecMode::kParallel — NextBatch() pipelines with morsel-parallel
//                         blocking drains (the default; exec/pipeline.hpp);
//   ExecMode::kBatch    — the same NextBatch() pipelines, strictly serial;
//   ExecMode::kTuple    — the PR 1 tuple-at-a-time paths, kept alive as the
//                         semantics reference the property tests cross-check
//                         against and as the benchmark baseline.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "algebra/relation.hpp"
#include "exec/key_codec.hpp"

namespace quotient {

/// Which pull discipline drains plans (ExecuteToRelation) and internal
/// operator builds. Process-wide; set before executing, not mid-plan.
///   kParallel — the default: batched pipelines whose blocking drains run
///               morsel-parallel over the worker pool (exec/pipeline.hpp,
///               exec/scheduler.hpp); bit-identical to kBatch at any
///               thread count by the chunk-ordered merge discipline.
///   kBatch    — strictly serial batched execution (the PR 2 discipline),
///               kept as the single-threaded reference and A/B baseline.
///   kTuple    — tuple-at-a-time execution (the PR 1 discipline), the
///               semantics reference the property tests cross-check.
enum class ExecMode { kBatch, kTuple, kParallel };

ExecMode GetExecMode();
void SetExecMode(ExecMode mode);

/// Target rows per batch (default 1024). Property tests shrink this to probe
/// batch-boundary edge cases; values are clamped to >= 1.
size_t GetBatchRows();
void SetBatchRows(size_t rows);

/// RAII helpers so tests can sweep modes/sizes without leaking state.
struct ScopedExecMode {
  explicit ScopedExecMode(ExecMode mode) : saved(GetExecMode()) { SetExecMode(mode); }
  ~ScopedExecMode() { SetExecMode(saved); }
  ExecMode saved;
};
struct ScopedBatchRows {
  explicit ScopedBatchRows(size_t rows) : saved(GetBatchRows()) { SetBatchRows(rows); }
  ~ScopedBatchRows() { SetBatchRows(saved); }
  size_t saved;
};

/// Dictionary encoding of one base-table column: the dictionary of its
/// distinct Values plus the per-row ids, column-major.
struct ColumnEncoding {
  ValueDict dict;
  std::vector<uint32_t> ids;  // ids[row] in storage (canonical) row order
};

/// Per-relation dictionary encoding, built once and shared: scans emit
/// encoded batches by copying id spans out of it. plan/catalog caches one
/// per base table so repeated queries (and the Law 13 partitioned great
/// divide) stop rebuilding encodings on every Open().
struct TableEncoding {
  static std::shared_ptr<const TableEncoding> Build(const Relation& relation);

  size_t rows = 0;
  std::vector<ColumnEncoding> columns;
};

using TableEncodingPtr = std::shared_ptr<const TableEncoding>;

/// One output column of a Batch: either dictionary-encoded (`dict` set, one
/// uint32 id per row) or a plain Value vector (the spill representation used
/// by the legacy adapter and for computed/join-copied attributes).
struct BatchColumn {
  const ValueDict* dict = nullptr;  // non-owning; owner outlives the batch
  std::vector<uint32_t> ids;
  std::vector<Value> values;

  bool encoded() const { return dict != nullptr; }
  const Value& At(size_t row) const { return dict ? dict->At(ids[row]) : values[row]; }
  void Clear() {
    dict = nullptr;
    ids.clear();
    values.clear();
  }
};

/// A batch of rows flowing between operators. Two layouts:
///
///  * columnar — num_columns() BatchColumns, each encoded or Value-typed;
///  * row view — pointers to Tuples in stable storage (a materialized
///    Relation, an operator's results vector, or the batch's own owned-row
///    store filled by the legacy Next() adapter).
///
/// A selection vector filters either layout without moving data: filters
/// and semi joins mark qualifying physical row indices instead of copying
/// survivors. Consumers iterate `for i in [0, ActiveRows()): r = RowAt(i)`.
class Batch {
 public:
  /// Clears to columnar layout with `num_cols` empty columns.
  void Reset(size_t num_cols) {
    row_mode_ = false;
    rows_ = 0;
    columns_.resize(num_cols);
    for (BatchColumn& c : columns_) c.Clear();
    row_refs_.clear();
    owned_.clear();
    ClearSelection();
  }

  /// Clears to row-view layout.
  void ResetRows() {
    row_mode_ = true;
    rows_ = 0;
    columns_.clear();
    row_refs_.clear();
    owned_.clear();
    ClearSelection();
  }

  bool row_mode() const { return row_mode_; }
  size_t rows() const { return rows_; }
  /// Finalizes a columnar fill (callers fill columns_ then set the count).
  void set_rows(size_t n) { rows_ = n; }

  size_t num_columns() const { return columns_.size(); }
  BatchColumn& column(size_t c) { return columns_[c]; }
  const BatchColumn& column(size_t c) const { return columns_[c]; }

  /// The column as an encoded column, or nullptr when this batch is a row
  /// view / the column is Value-typed. The fast paths key off this.
  const BatchColumn* EncodedColumn(size_t c) const {
    if (row_mode_ || c >= columns_.size() || !columns_[c].encoded()) return nullptr;
    return &columns_[c];
  }

  const Value& At(size_t row, size_t col) const {
    return row_mode_ ? (*row_refs_[row])[col] : columns_[col].At(row);
  }
  /// The whole row as a Tuple pointer (row views only, else nullptr).
  const Tuple* RowRef(size_t row) const { return row_mode_ ? row_refs_[row] : nullptr; }

  /// Appends a pointer to a tuple in caller-owned stable storage.
  void AppendRowRef(const Tuple* t) {
    row_refs_.push_back(t);
    ++rows_;
  }
  /// Appends a tuple owned by the batch (the legacy Next() adapter path).
  void AppendOwnedRow(Tuple t);

  /// Copies physical row `row` out as a Tuple (clears `out` first).
  void ToTuple(size_t row, Tuple* out) const;

  // --- selection vector ----------------------------------------------------
  bool has_selection() const { return has_sel_; }
  void SetSelection(std::vector<uint32_t> sel) {
    sel_ = std::move(sel);
    has_sel_ = true;
  }
  void ClearSelection() {
    sel_.clear();
    has_sel_ = false;
  }
  /// Rows surviving the selection (== rows() when none is set).
  size_t ActiveRows() const { return has_sel_ ? sel_.size() : rows_; }
  /// Physical index of the i-th active row.
  uint32_t RowAt(size_t i) const { return has_sel_ ? sel_[i] : static_cast<uint32_t>(i); }

 private:
  bool row_mode_ = true;
  size_t rows_ = 0;
  std::vector<BatchColumn> columns_;
  std::vector<const Tuple*> row_refs_;
  // Backing store for AppendOwnedRow: the unique_ptr indirection keeps each
  // Tuple's address stable while the vector grows (row_refs_ point at the
  // pointees). Do NOT flatten to std::vector<Tuple> — reallocation would
  // dangle row_refs_.
  std::vector<std::unique_ptr<Tuple>> owned_;
  std::vector<uint32_t> sel_;
  bool has_sel_ = false;
};

/// Lazily-filled mapping from one dictionary's dense ids to another id
/// space: the core of batch-level key packing. The first time a source id is
/// seen its Value is resolved through the supplied callback (an intern or a
/// find against the operator's codec); afterwards the per-row cost is one
/// array load. Rebinding to a different source dictionary clears the cache.
class IdTranslator {
 public:
  template <typename Resolve>
  uint32_t Map(const ValueDict& source, uint32_t src_id, Resolve&& resolve) {
    if (&source != source_) {
      source_ = &source;
      map_.clear();
    }
    if (src_id >= map_.size()) {
      map_.resize(std::max(source.size(), size_t{src_id} + 1), kUnfilled);
    }
    uint32_t& slot = map_[src_id];
    if (slot == kUnfilled) slot = resolve(source.At(src_id));
    return slot;
  }

 private:
  // Target ids are dense (dictionary sizes are bounded by row counts), so
  // UINT32_MAX-1 can never be a real id; UINT32_MAX itself is the shared
  // kNotFound/miss sentinel and a legitimate cached result.
  static constexpr uint32_t kUnfilled = UINT32_MAX - 1;
  const ValueDict* source_ = nullptr;
  std::vector<uint32_t> map_;
};

/// Appends a batch's key columns into a building (unsealed) KeyCodec:
/// encoded columns go through per-column translation arrays, Value columns
/// fall back to one dictionary intern per row (the tuple-at-a-time cost).
class BatchCodecAppender {
 public:
  BatchCodecAppender(KeyCodec* codec, const std::vector<size_t>* indices)
      : codec_(codec), indices_(indices), xlat_(indices->size()) {}

  void Append(const Batch& batch);

 private:
  KeyCodec* codec_;
  const std::vector<size_t>* indices_;
  std::vector<IdTranslator> xlat_;
  std::vector<uint32_t> scratch_;  // row-major ids, ActiveRows x num key cols
};

/// Resolves each batch row's key columns to the dense id of a sealed,
/// numbered build side (divisor numbers, join keys, semi-join membership):
/// per-column translate/find, then a packed probe. Misses yield
/// KeyNumbering::kNotFound, exactly like KeyNumbering::Probe on a Tuple.
class BatchKeyProbe {
 public:
  void Bind(const KeyNumbering* numbering, const KeyCodec* codec,
            const std::vector<size_t>* indices) {
    numbering_ = numbering;
    codec_ = codec;
    indices_ = indices;
    xlat_.assign(indices->size(), IdTranslator{});
  }

  /// Appends one dense id (or kNotFound) per active row to `out`.
  void Resolve(const Batch& batch, std::vector<uint32_t>* out);

 private:
  const KeyNumbering* numbering_ = nullptr;
  const KeyCodec* codec_ = nullptr;
  const std::vector<size_t>* indices_ = nullptr;
  std::vector<IdTranslator> xlat_;
  std::vector<uint32_t> scratch_;
  std::vector<uint8_t> miss_;
};

/// Per-row flat keys in an IncrementalKeyEncoder's id space (the streaming
/// dedup / grouping discipline): translation arrays for encoded columns,
/// per-row interning otherwise. The key space is canonical — identical to
/// what Encode64/EncodeSpill produce for the same rows — so batches of mixed
/// provenance dedup consistently.
class BatchIncrementalKeyer {
 public:
  BatchIncrementalKeyer(IncrementalKeyEncoder* encoder, size_t num_cols)
      : encoder_(encoder), xlat_(num_cols) {}

  /// Computes keys for every active row. `col_map` maps encoder column c to
  /// batch column (*col_map)[c]; nullptr means the identity. Exactly one of
  /// out64 / out_spill is filled, matching encoder->fits64().
  void Keys(const Batch& batch, const std::vector<size_t>* col_map,
            std::vector<uint64_t>* out64, std::vector<SmallByteKey>* out_spill);

 private:
  IncrementalKeyEncoder* encoder_;
  std::vector<IdTranslator> xlat_;
  std::vector<uint32_t> scratch_;
};

/// Emits `results[*position ..]` as row-view batches of at most
/// GetBatchRows() rows; the shared tail of every blocking operator
/// (divisions, aggregation, set containment join). Returns false at end.
bool EmitResultBatch(const std::vector<Tuple>& results, size_t* position, Batch* out);

}  // namespace quotient
