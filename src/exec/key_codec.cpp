#include "exec/key_codec.hpp"

#include <bit>

namespace quotient {

void KeyCodec::Seal() {
  shifts_.assign(dicts_.size(), 0);
  masks_.assign(dicts_.size(), 0);
  uint32_t offset = 0;
  bool overflow = false;
  for (size_t c = 0; c < dicts_.size(); ++c) {
    size_t n = dicts_[c].size();
    // Minimal width for ids 0..n-1; an empty or single-value dictionary
    // contributes no bits (its id is always 0).
    uint32_t width = n <= 1 ? 0 : static_cast<uint32_t>(std::bit_width(n - 1));
    if (offset + width > 64) {
      overflow = true;
      break;
    }
    shifts_[c] = offset;
    masks_[c] = width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
    offset += width;
  }
  spilled_ = overflow;
  sealed_ = true;
}

}  // namespace quotient
