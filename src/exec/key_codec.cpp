#include "exec/key_codec.hpp"

#include <bit>

namespace quotient {

void KeyCodec::Seal() {
  shifts_.assign(dicts_.size(), 0);
  masks_.assign(dicts_.size(), 0);
  uint32_t offset = 0;
  bool overflow = false;
  for (size_t c = 0; c < dicts_.size(); ++c) {
    size_t n = dicts_[c].size();
    // Minimal width for ids 0..n-1; an empty or single-value dictionary
    // contributes no bits (its id is always 0).
    uint32_t width = n <= 1 ? 0 : static_cast<uint32_t>(std::bit_width(n - 1));
    if (offset + width > 64) {
      overflow = true;
      break;
    }
    shifts_[c] = offset;
    masks_[c] = width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
    offset += width;
  }
  spilled_ = overflow;
  sealed_ = true;
}

void KeyCodec::AppendTranslated(const KeyCodec& part) {
  size_t nc = dicts_.size();
  if (part.num_rows_ == 0 || nc == 0) {
    num_rows_ += part.num_rows_;
    return;
  }
  // Lazy per-column translation: part id -> this codec's id, resolved once
  // per (column, distinct part value). kNotFound marks unfilled slots — a
  // translated id is always a real dense id, so it can never collide.
  std::vector<std::vector<uint32_t>> xlat(nc);
  for (size_t c = 0; c < nc; ++c) xlat[c].assign(part.dicts_[c].size(), ValueDict::kNotFound);
  scratch_.resize(nc);
  for (size_t r = 0; r < part.num_rows_; ++r) {
    const uint32_t* src = part.ids_.Row(r);
    for (size_t c = 0; c < nc; ++c) {
      uint32_t& slot = xlat[c][src[c]];
      if (slot == ValueDict::kNotFound) slot = dicts_[c].GetOrAdd(part.dicts_[c].At(src[c]));
      scratch_[c] = slot;
    }
    ids_.Append(scratch_.data(), 1);
  }
  num_rows_ += part.num_rows_;
}

}  // namespace quotient
