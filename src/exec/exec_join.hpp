#pragma once

#include <memory>

#include "algebra/predicate.hpp"
#include "exec/batch.hpp"
#include "exec/iterator.hpp"
#include "exec/key_codec.hpp"
#include "exec/recycler.hpp"

namespace quotient {

/// Shared batched-probe state of the hash joins: the current left batch,
/// its per-row dense key ids (BatchKeyProbe resolves one batch at a time in
/// a tight loop), and the resume cursor for buckets larger than what fits
/// in one output batch.
struct JoinProbeState {
  Batch in;                       // current left batch
  std::vector<uint32_t> keys;     // dense right-key id per active row
  size_t pos = 0;                 // next active-row index to emit from
  size_t match_pos = 0;           // next bucket entry for that row
  bool valid = false;             // `in` holds an undrained batch

  void Reset() {
    pos = 0;
    match_pos = 0;
    valid = false;
  }
};

/// Hash natural join on the common attribute names (build on the right,
/// probe with the left). Output schema: attrs(left) ++ (attrs(right) −
/// common). Degenerates to a cross product when no names are shared.
///
/// The build side is key-encoded: right keys are dictionary-compressed and
/// numbered densely, so the "hash table" is a plain bucket vector indexed by
/// key number, and probes are dictionary lookups (a probe value unseen
/// during build cannot match). NextBatch() probes a whole left batch at a
/// time and emits columnar output: left columns stay dictionary-encoded
/// when the input batch is, right columns are copied Values.
class HashJoinIterator : public Iterator {
 public:
  HashJoinIterator(IterPtr left, IterPtr right);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  bool NextBatch(Batch* out) override;
  void Close() override;
  const char* name() const override { return "HashJoin"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }
  std::vector<size_t> BlockingInputs() override { return {1}; }

  /// Attaches the planner-composed recycling directive (exec/recycler.hpp):
  /// Open() then adopts the cached build side — the codec, numbering, and
  /// per-key buckets of right_rest projections — instead of draining the
  /// right child.
  void SetRecycle(RecycleSpec spec) { recycle_ = std::move(spec); }

 private:
  std::shared_ptr<JoinBuildArtifact> BuildArtifact();

  IterPtr left_;
  IterPtr right_;
  Schema schema_;
  std::vector<size_t> left_key_;
  std::vector<size_t> right_key_;
  std::vector<size_t> right_rest_;
  RecycleSpec recycle_;
  // The build side: codec, numbering, and per right-key number the matching
  // rows' right_rest projections (projected once at build, not per emitted
  // row). Possibly shared with concurrent executions through the recycler.
  std::shared_ptr<const JoinBuildArtifact> build_;

  Tuple current_left_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_pos_ = 0;
  // Batch path.
  BatchKeyProbe probe_;
  JoinProbeState state_;
};

/// Nested-loop theta join (right side materialized); handles arbitrary
/// conditions. Output schema: attrs(left) ++ attrs(right) (disjoint names).
class NestedLoopJoinIterator : public Iterator {
 public:
  NestedLoopJoinIterator(IterPtr left, IterPtr right, ExprPtr condition);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const char* name() const override { return "NestedLoopJoin"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }
  std::vector<size_t> BlockingInputs() override { return {1}; }

 private:
  IterPtr left_;
  IterPtr right_;
  Schema schema_;
  ExprPtr condition_;
  std::unique_ptr<BoundExpr> bound_;
  std::vector<Tuple> right_rows_;
  Tuple current_left_;
  bool have_left_ = false;
  size_t right_pos_ = 0;
};

/// Hash equi-join on explicit key columns (for theta joins whose condition
/// is a conjunction of left-column = right-column equalities). Output schema
/// attrs(left) ++ attrs(right), i.e. theta-join semantics: both key columns
/// are preserved.
class EquiJoinIterator : public Iterator {
 public:
  EquiJoinIterator(IterPtr left, IterPtr right, std::vector<std::string> left_keys,
                   std::vector<std::string> right_keys);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  bool NextBatch(Batch* out) override;
  void Close() override;
  const char* name() const override { return "EquiJoin"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }
  std::vector<size_t> BlockingInputs() override { return {1}; }

  /// Attaches the planner-composed recycling directive (exec/recycler.hpp).
  void SetRecycle(RecycleSpec spec) { recycle_ = std::move(spec); }

 private:
  std::shared_ptr<JoinBuildArtifact> BuildArtifact();

  IterPtr left_;
  IterPtr right_;
  Schema schema_;
  std::vector<size_t> left_key_;
  std::vector<size_t> right_key_;
  RecycleSpec recycle_;
  // Build side; buckets hold full right rows (theta-join semantics).
  std::shared_ptr<const JoinBuildArtifact> build_;
  Tuple current_left_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_pos_ = 0;
  // Batch path.
  BatchKeyProbe probe_;
  JoinProbeState state_;
};

/// Hash semi-join r1 ⋉ r2 on the common attribute names. With no common
/// attributes it degenerates per Appendix A: keeps everything iff the right
/// side is nonempty (used to compile Laws 11/12's guards).
class HashSemiJoinIterator : public Iterator {
 public:
  HashSemiJoinIterator(IterPtr left, IterPtr right, bool anti = false);

  const Schema& schema() const override { return left_->schema(); }
  void Open() override;
  bool Next(Tuple* out) override;
  bool NextBatch(Batch* out) override;
  void Close() override;
  const char* name() const override { return anti_ ? "HashAntiJoin" : "HashSemiJoin"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }
  std::vector<size_t> BlockingInputs() override { return {1}; }

  /// Attaches the planner-composed recycling directive (exec/recycler.hpp).
  /// Semi and anti joins share one build key: the membership set is
  /// identical, only the probe's keep-test differs.
  void SetRecycle(RecycleSpec spec) { recycle_ = std::move(spec); }

 private:
  std::shared_ptr<JoinBuildArtifact> BuildArtifact();

  IterPtr left_;
  IterPtr right_;
  bool anti_;
  std::vector<size_t> left_key_;
  std::vector<size_t> right_key_;
  RecycleSpec recycle_;
  // The key numbering doubles as the membership set: a probe hit means the
  // left key equals some right key. Buckets stay empty for semi joins.
  std::shared_ptr<const JoinBuildArtifact> build_;
  // Batch path.
  BatchKeyProbe probe_;
  std::vector<uint32_t> batch_keys_;
};

}  // namespace quotient
