#pragma once

#include <unordered_map>

#include "algebra/divide.hpp"
#include "exec/iterator.hpp"
#include "util/bitmap.hpp"

namespace quotient {

/// The physical small-divide algorithms (Graefe's catalogue [14], plus a
/// pedagogical nested-loop baseline):
///   kHash           — hash-division: divisor hashed to bit positions, one
///                     bitmap per quotient candidate (Graefe/Cole [16]).
///   kHashTransposed — hash-division with the roles transposed: quotient
///                     candidates are numbered and each divisor tuple keeps
///                     a bitmap over candidates; a candidate qualifies when
///                     its bit is set in every divisor bitmap (the
///                     "divisor-table bitmaps" variant of [16]). Preferable
///                     when the divisor is small and candidates are many.
///   kMergeSort      — "naive division": dividend sorted by (A, B), divisor
///                     sorted; per-group merge test.
///   kHashCount      — hash-based aggregate division: count matching divisor
///                     tuples per candidate, compare with |divisor|.
///   kSortCount      — sort-based aggregate division: same counting idea
///                     over sorted runs.
///   kNestedLoop     — per candidate, probe its group for every divisor
///                     tuple.
enum class DivisionAlgorithm {
  kHash,
  kHashTransposed,
  kMergeSort,
  kHashCount,
  kSortCount,
  kNestedLoop
};

const char* DivisionAlgorithmName(DivisionAlgorithm algorithm);

/// All physical divisions are blocking: they materialize both inputs on
/// Open() and then stream the quotient. All algorithms implement Codd's
/// semantics including r1 ÷ ∅ = πA(r1).
///
/// Input streams are assumed duplicate-free (set semantics); every operator
/// in this engine preserves that invariant.
class DivisionIterator : public Iterator {
 public:
  DivisionIterator(IterPtr dividend, IterPtr divisor, DivisionAlgorithm algorithm);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const char* name() const override;
  std::vector<Iterator*> InputIterators() override {
    return {dividend_.get(), divisor_.get()};
  }

 private:
  void RunHash(const std::vector<Tuple>& divisor_keys);
  void RunHashTransposed(const std::vector<Tuple>& divisor_keys);
  void RunMergeSort(std::vector<Tuple> divisor_keys);
  void RunHashCount(const std::vector<Tuple>& divisor_keys);
  void RunSortCount(const std::vector<Tuple>& divisor_keys);
  void RunNestedLoop(const std::vector<Tuple>& divisor_keys);

  IterPtr dividend_;
  IterPtr divisor_;
  DivisionAlgorithm algorithm_;
  Schema schema_;
  std::vector<size_t> a_idx_;        // A positions in the dividend
  std::vector<size_t> b_idx_;        // B positions in the dividend
  std::vector<size_t> divisor_idx_;  // B positions in the divisor

  std::vector<Tuple> results_;
  size_t position_ = 0;
  // Scratch (valid between Open and Close): materialized dividend as
  // (A-part, B-part) pairs.
  std::vector<std::pair<Tuple, Tuple>> pairs_;
};

/// Convenience: run one algorithm on materialized relations.
Relation ExecDivide(const Relation& dividend, const Relation& divisor,
                    DivisionAlgorithm algorithm);

}  // namespace quotient
