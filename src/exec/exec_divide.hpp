#pragma once

#include <memory>

#include "algebra/divide.hpp"
#include "exec/iterator.hpp"
#include "exec/key_codec.hpp"
#include "exec/recycler.hpp"

namespace quotient {

/// The physical small-divide algorithms (Graefe's catalogue [14], plus a
/// pedagogical nested-loop baseline):
///   kHash           — hash-division: divisor hashed to bit positions, one
///                     bitmap per quotient candidate (Graefe/Cole [16]).
///   kHashTransposed — hash-division with the roles transposed: quotient
///                     candidates are numbered and each divisor tuple keeps
///                     a bitmap over candidates; a candidate qualifies when
///                     its bit is set in every divisor bitmap (the
///                     "divisor-table bitmaps" variant of [16]). Preferable
///                     when the divisor is small and candidates are many.
///   kMergeSort      — "naive division": dividend sorted by (A, B), divisor
///                     sorted; per-group merge test.
///   kHashCount      — hash-based aggregate division: count matching divisor
///                     tuples per candidate, compare with |divisor|.
///   kSortCount      — sort-based aggregate division: same counting idea
///                     over sorted runs.
///   kNestedLoop     — per candidate, probe its group for every divisor
///                     tuple.
enum class DivisionAlgorithm {
  kHash,
  kHashTransposed,
  kMergeSort,
  kHashCount,
  kSortCount,
  kNestedLoop
};

const char* DivisionAlgorithmName(DivisionAlgorithm algorithm);

/// All physical divisions are blocking: they materialize both inputs on
/// Open() and then stream the quotient. All algorithms implement Codd's
/// semantics including r1 ÷ ∅ = πA(r1).
///
/// Input streams are assumed duplicate-free (set semantics); every operator
/// in this engine preserves that invariant.
///
/// Execution is key-encoded (see docs/key_encoding.md): Open() dictionary-
/// encodes the divisor's B tuples and numbers them densely 0..n-1, then
/// drains the dividend once, interning each row's A key and resolving its B
/// columns to a divisor number (or a miss). Every algorithm then runs over
/// two flat arrays — per-row A keys and per-row divisor numbers — instead of
/// hash tables keyed by materialized Tuples.
///
/// In batched modes both drains consume encoded batches: dictionary ids
/// from the scans translate into the division's codecs through per-column
/// translation arrays (see docs/batched_execution.md), so the per-row probe
/// cost drops from a Value hash to an array load. In ExecMode::kParallel
/// each drain is a pipeline (exec/pipeline.hpp): the input's id spans run
/// morsel-parallel into per-chunk codec/probe states that merge in chunk
/// order, so results are bit-identical to the serial disciplines.
class DivisionIterator : public Iterator {
 public:
  DivisionIterator(IterPtr dividend, IterPtr divisor, DivisionAlgorithm algorithm);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  bool NextBatch(Batch* out) override;
  void Close() override;
  const char* name() const override;
  std::vector<Iterator*> InputIterators() override {
    return {dividend_.get(), divisor_.get()};
  }
  std::vector<size_t> BlockingInputs() override { return {0, 1}; }

  /// Attaches the planner-composed recycling directive (exec/recycler.hpp):
  /// Open() then adopts cached divisor/probe state instead of draining the
  /// children, or publishes what it builds. The keys omit the algorithm —
  /// every division algorithm runs over the same encoded state.
  void SetRecycle(RecycleSpec spec) { recycle_ = std::move(spec); }

 private:
  std::shared_ptr<DivisionBuildArtifact> BuildDivisorArtifact();
  std::shared_ptr<DivisionProbeArtifact> BuildProbeArtifact(
      const DivisionBuildArtifact& build);
  /// Adopt-or-build for the divisor side (consults the recycler when keyed).
  std::shared_ptr<const DivisionBuildArtifact> GetDivisorArtifact();

  IterPtr dividend_;
  IterPtr divisor_;
  DivisionAlgorithm algorithm_;
  Schema schema_;
  std::vector<size_t> a_idx_;        // A positions in the dividend
  std::vector<size_t> b_idx_;        // B positions in the dividend
  std::vector<size_t> divisor_idx_;  // B positions in the divisor
  RecycleSpec recycle_;

  std::vector<Tuple> results_;
  size_t position_ = 0;
  // Encoded state (valid between Open and Close), possibly shared with
  // concurrent executions through the recycler: the dividend's per-row A
  // keys + divisor numbers, and the divisor build table behind them.
  std::shared_ptr<const DivisionProbeArtifact> probe_;
};

/// Convenience: run one algorithm on materialized relations. Optional
/// pre-built table encodings (TableEncoding::Build or a catalog cache) let
/// repeated calls skip re-encoding the inputs in batch mode.
Relation ExecDivide(const Relation& dividend, const Relation& divisor,
                    DivisionAlgorithm algorithm, TableEncodingPtr dividend_enc = nullptr,
                    TableEncodingPtr divisor_enc = nullptr);

}  // namespace quotient
