#include "exec/exec_great_divide.hpp"

#include <algorithm>
#include <thread>
#include <unordered_set>

#include "exec/exec_basic.hpp"
#include "util/status.hpp"

namespace quotient {

namespace {

std::vector<size_t> IndicesOf(const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) indices.push_back(schema.IndexOfOrThrow(name));
  return indices;
}

uint64_t SetSignature(const std::vector<Value>& elements) {
  uint64_t signature = 0;
  for (const Value& v : elements) signature |= uint64_t{1} << (v.Hash() & 63);
  return signature;
}

}  // namespace

const char* GreatDivideAlgorithmName(GreatDivideAlgorithm algorithm) {
  switch (algorithm) {
    case GreatDivideAlgorithm::kHash: return "HashGreatDivide";
    case GreatDivideAlgorithm::kGroup: return "GroupGreatDivide";
  }
  return "?";
}

GreatDivideIterator::GreatDivideIterator(IterPtr dividend, IterPtr divisor,
                                         GreatDivideAlgorithm algorithm)
    : dividend_(std::move(dividend)), divisor_(std::move(divisor)), algorithm_(algorithm) {
  DivisionAttributes attrs =
      DivisionAttributeSets(dividend_->schema(), divisor_->schema(), /*allow_c=*/true);
  if (attrs.c.empty()) {
    throw SchemaError(
        "GreatDivideIterator requires divisor group attributes C; use DivisionIterator for the "
        "small divide");
  }
  schema_ = dividend_->schema().Project(attrs.a).Concat(divisor_->schema().Project(attrs.c));
  a_idx_ = IndicesOf(dividend_->schema(), attrs.a);
  b_idx_ = IndicesOf(dividend_->schema(), attrs.b);
  divisor_b_idx_ = IndicesOf(divisor_->schema(), attrs.b);
  divisor_c_idx_ = IndicesOf(divisor_->schema(), attrs.c);
}

void GreatDivideIterator::Open() {
  ResetCount();
  results_.clear();
  position_ = 0;

  dividend_->Open();
  divisor_->Open();
  std::vector<std::pair<Tuple, Tuple>> dividend_pairs;  // (A, B)
  std::vector<std::pair<Tuple, Tuple>> divisor_pairs;   // (B, C)
  Tuple t;
  while (dividend_->Next(&t)) {
    dividend_pairs.emplace_back(ProjectTuple(t, a_idx_), ProjectTuple(t, b_idx_));
  }
  while (divisor_->Next(&t)) {
    divisor_pairs.emplace_back(ProjectTuple(t, divisor_b_idx_), ProjectTuple(t, divisor_c_idx_));
  }

  switch (algorithm_) {
    case GreatDivideAlgorithm::kHash: RunHash(dividend_pairs, divisor_pairs); break;
    case GreatDivideAlgorithm::kGroup: RunGroupAtATime(dividend_pairs, divisor_pairs); break;
  }
}

void GreatDivideIterator::RunHash(const std::vector<std::pair<Tuple, Tuple>>& dividend_pairs,
                                  const std::vector<std::pair<Tuple, Tuple>>& divisor_pairs) {
  // Number the C-groups, record which groups each divisor B value belongs
  // to, then count per-(candidate, group) matches in one dividend pass.
  std::unordered_map<Tuple, size_t, TupleHash, TupleEq> group_ids;
  std::vector<Tuple> group_values;
  std::vector<size_t> group_sizes;
  std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash, TupleEq> member_of;
  for (const auto& [b, c] : divisor_pairs) {
    auto [it, inserted] = group_ids.try_emplace(c, group_ids.size());
    if (inserted) {
      group_values.push_back(c);
      group_sizes.push_back(0);
    }
    group_sizes[it->second] += 1;
    member_of[b].push_back(static_cast<uint32_t>(it->second));
  }
  size_t k = group_values.size();

  std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash, TupleEq> counts;
  for (const auto& [a, b] : dividend_pairs) {
    auto it = member_of.find(b);
    if (it == member_of.end()) continue;
    auto [entry, inserted] = counts.try_emplace(a);
    if (inserted) entry->second.assign(k, 0);
    for (uint32_t gid : it->second) entry->second[gid] += 1;
  }
  for (const auto& [a, per_group] : counts) {
    for (size_t gid = 0; gid < k; ++gid) {
      if (per_group[gid] == group_sizes[gid]) {
        results_.push_back(ConcatTuples(a, group_values[gid]));
      }
    }
  }
}

void GreatDivideIterator::RunGroupAtATime(
    const std::vector<std::pair<Tuple, Tuple>>& dividend_pairs,
    const std::vector<std::pair<Tuple, Tuple>>& divisor_pairs) {
  // Definition 4 executed literally: one small divide per divisor group.
  std::unordered_map<Tuple, std::vector<Tuple>, TupleHash, TupleEq> groups;
  for (const auto& [b, c] : divisor_pairs) groups[c].push_back(b);

  for (const auto& [c, divisor_keys] : groups) {
    std::unordered_set<Tuple, TupleHash, TupleEq> divisor_set(divisor_keys.begin(),
                                                              divisor_keys.end());
    std::unordered_map<Tuple, size_t, TupleHash, TupleEq> counts;
    for (const auto& [a, b] : dividend_pairs) {  // full dividend re-scan per group
      if (divisor_set.count(b)) counts[a] += 1;
    }
    for (const auto& [a, count] : counts) {
      if (count == divisor_set.size()) results_.push_back(ConcatTuples(a, c));
    }
  }
}

bool GreatDivideIterator::Next(Tuple* out) {
  if (position_ >= results_.size()) return false;
  *out = results_[position_++];
  CountRow();
  return true;
}

void GreatDivideIterator::Close() {
  dividend_->Close();
  divisor_->Close();
  results_.clear();
}

Relation ExecGreatDivide(const Relation& dividend, const Relation& divisor,
                         GreatDivideAlgorithm algorithm) {
  GreatDivideIterator it(
      std::make_unique<RelationScan>(std::make_shared<const Relation>(dividend)),
      std::make_unique<RelationScan>(std::make_shared<const Relation>(divisor)), algorithm);
  return ExecuteToRelation(it);
}

Relation GreatDividePartitioned(const Relation& dividend, const Relation& divisor,
                                size_t threads) {
  if (threads == 0) throw SchemaError("GreatDividePartitioned needs threads >= 1");
  DivisionAttributes attrs =
      DivisionAttributeSets(dividend.schema(), divisor.schema(), /*allow_c=*/true);
  if (attrs.c.empty()) throw SchemaError("GreatDividePartitioned requires C attributes");

  // Hash-partition the divisor on C. Projections of the partitions on C are
  // disjoint, so by Law 13 the union of the partial results is the answer.
  std::vector<size_t> c_idx = IndicesOf(divisor.schema(), attrs.c);
  std::vector<std::vector<Tuple>> parts(threads);
  TupleHash hasher;
  for (const Tuple& t : divisor.tuples()) {
    parts[hasher(ProjectTuple(t, c_idx)) % threads].push_back(t);
  }

  std::vector<Relation> partial(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers.emplace_back([&, i] {
      Relation part(divisor.schema(), std::move(parts[i]));
      if (part.empty()) {
        partial[i] = Relation(dividend.schema().Project(attrs.a).Concat(
            divisor.schema().Project(attrs.c)));
      } else {
        partial[i] = ExecGreatDivide(dividend, part, GreatDivideAlgorithm::kHash);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  std::vector<Tuple> all;
  for (const Relation& r : partial) {
    all.insert(all.end(), r.tuples().begin(), r.tuples().end());
  }
  return Relation(dividend.schema().Project(attrs.a).Concat(divisor.schema().Project(attrs.c)),
                  std::move(all));
}

SetContainmentJoinIterator::SetContainmentJoinIterator(IterPtr left, std::string left_set_attr,
                                                       IterPtr right,
                                                       std::string right_set_attr)
    : left_(std::move(left)),
      right_(std::move(right)),
      schema_(left_->schema().Concat(right_->schema())),
      left_idx_(left_->schema().IndexOfOrThrow(left_set_attr)),
      right_idx_(right_->schema().IndexOfOrThrow(right_set_attr)) {
  if (left_->schema().attribute(left_idx_).type != ValueType::kSet ||
      right_->schema().attribute(right_idx_).type != ValueType::kSet) {
    throw SchemaError("SetContainmentJoinIterator requires set-valued join attributes");
  }
}

void SetContainmentJoinIterator::Open() {
  ResetCount();
  results_.clear();
  position_ = 0;
  left_->Open();
  right_->Open();

  Tuple t;
  std::vector<std::pair<uint64_t, Tuple>> lhs;
  while (left_->Next(&t)) lhs.emplace_back(SetSignature(t[left_idx_].as_set()), t);
  std::vector<std::pair<uint64_t, Tuple>> rhs;
  while (right_->Next(&t)) rhs.emplace_back(SetSignature(t[right_idx_].as_set()), t);

  for (const auto& [sig1, t1] : lhs) {
    const std::vector<Value>& s1 = t1[left_idx_].as_set();
    for (const auto& [sig2, t2] : rhs) {
      // Signature filter: containment implies sig2's bits ⊆ sig1's bits.
      if ((sig1 & sig2) != sig2) continue;
      const std::vector<Value>& s2 = t2[right_idx_].as_set();
      if (std::includes(s1.begin(), s1.end(), s2.begin(), s2.end())) {
        results_.push_back(ConcatTuples(t1, t2));
      }
    }
  }
}

bool SetContainmentJoinIterator::Next(Tuple* out) {
  if (position_ >= results_.size()) return false;
  *out = results_[position_++];
  CountRow();
  return true;
}

void SetContainmentJoinIterator::Close() {
  left_->Close();
  right_->Close();
  results_.clear();
}

}  // namespace quotient
