#include "exec/exec_great_divide.hpp"

#include <algorithm>
#include <unordered_set>

#include "exec/exec_basic.hpp"
#include "exec/pipeline.hpp"
#include "exec/query_context.hpp"
#include "exec/scheduler.hpp"
#include "util/status.hpp"

namespace quotient {

namespace {

std::vector<size_t> IndicesOf(const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) indices.push_back(schema.IndexOfOrThrow(name));
  return indices;
}

uint64_t SetSignature(const std::vector<Value>& elements) {
  uint64_t signature = 0;
  for (const Value& v : elements) signature |= uint64_t{1} << (v.Hash() & 63);
  return signature;
}

}  // namespace

const char* GreatDivideAlgorithmName(GreatDivideAlgorithm algorithm) {
  switch (algorithm) {
    case GreatDivideAlgorithm::kHash: return "HashGreatDivide";
    case GreatDivideAlgorithm::kGroup: return "GroupGreatDivide";
  }
  return "?";
}

GreatDivideIterator::GreatDivideIterator(IterPtr dividend, IterPtr divisor,
                                         GreatDivideAlgorithm algorithm)
    : dividend_(std::move(dividend)), divisor_(std::move(divisor)), algorithm_(algorithm) {
  DivisionAttributes attrs =
      DivisionAttributeSets(dividend_->schema(), divisor_->schema(), /*allow_c=*/true);
  if (attrs.c.empty()) {
    throw SchemaError(
        "GreatDivideIterator requires divisor group attributes C; use DivisionIterator for the "
        "small divide");
  }
  schema_ = dividend_->schema().Project(attrs.a).Concat(divisor_->schema().Project(attrs.c));
  a_idx_ = IndicesOf(dividend_->schema(), attrs.a);
  b_idx_ = IndicesOf(dividend_->schema(), attrs.b);
  divisor_b_idx_ = IndicesOf(divisor_->schema(), attrs.b);
  divisor_c_idx_ = IndicesOf(divisor_->schema(), attrs.c);
}

std::shared_ptr<GreatDivideBuildArtifact> GreatDivideIterator::BuildDivisorArtifact() {
  // Build pipeline: dictionary-encode the divisor's B and C columns (one
  // pass feeding both codecs) and number both key spaces densely. Drain
  // discipline per pipeline: see exec/pipeline.hpp.
  auto art = std::make_shared<GreatDivideBuildArtifact>();
  divisor_->Open();
  art->b_codec = KeyCodec(divisor_b_idx_.size());
  art->c_codec = KeyCodec(divisor_c_idx_.size());
  size_t divisor_expected = divisor_->EstimatedRows();
  art->b_codec.Reserve(divisor_expected);
  art->c_codec.Reserve(divisor_expected);
  if (UseTupleDrain(*divisor_)) {
    while (const Tuple* t = divisor_->NextRef()) {
      art->b_codec.Add(*t, divisor_b_idx_);
      art->c_codec.Add(*t, divisor_c_idx_);
    }
  } else {
    CodecAppendSink sink(&art->b_codec, &divisor_b_idx_);
    sink.AddTarget(&art->c_codec, &divisor_c_idx_);
    RecordPipelineDop(RunPipeline(*divisor_, sink).dop);
  }
  art->b_codec.Seal();
  art->c_codec.Seal();

  art->b.Build(art->b_codec);
  art->c.Build(art->c_codec);
  art->group_sizes.assign(art->c.count(), 0);
  art->member_of.assign(art->b.count(), {});
  for (size_t i = 0; i < art->b_codec.rows(); ++i) {
    uint32_t gid = art->c.row_ids()[i];
    art->group_sizes[gid] += 1;
    art->member_of[art->b.row_ids()[i]].push_back(gid);
  }
  return art;
}

std::shared_ptr<GreatDivideProbeArtifact> GreatDivideIterator::BuildProbeArtifact() {
  auto art = std::make_shared<GreatDivideProbeArtifact>();

  // Divisor side first: adopt a cached build artifact or build (and keep)
  // a private one — both algorithms read it, so the probe artifact pins it.
  if (recycle_.recycler && !recycle_.build_key.empty()) {
    ArtifactPtr cached = recycle_.recycler->GetOrBuild(
        recycle_.build_key, recycle_.tables,
        [&]() -> std::shared_ptr<RecycledArtifact> { return BuildDivisorArtifact(); });
    if (cached) art->build = std::static_pointer_cast<const GreatDivideBuildArtifact>(cached);
  }
  if (!art->build) {
    art->owned_build = BuildDivisorArtifact();
    art->build = art->owned_build;
  }

  // Probe pipeline: drain the dividend once, interning A keys and
  // resolving each row's B columns to a divisor B number (or a miss).
  dividend_->Open();
  art->a_codec = KeyCodec(a_idx_.size());
  size_t expected = dividend_->EstimatedRows();
  art->a_codec.Reserve(expected);
  art->row_b.Reserve(expected);
  if (UseTupleDrain(*dividend_)) {
    while (const Tuple* row = dividend_->NextRef()) {
      art->a_codec.Add(*row, a_idx_);
      art->row_b.PushBack(art->build->b.Probe(*row, b_idx_));
    }
  } else {
    ProbeAppendSink sink(&art->a_codec, &a_idx_, &art->build->b, &art->build->b_codec, &b_idx_,
                         &art->row_b);
    RecordPipelineDop(RunPipeline(*dividend_, sink).dop);
  }
  art->a_codec.Seal();
  art->a.Build(art->a_codec);
  return art;
}

void GreatDivideIterator::Open() {
  ResetCount();
  results_.clear();
  position_ = 0;

  // Adopt-or-build the full encoded probe state; a probe hit skips both
  // child drains (the children are never opened — Close() on an unopened
  // child is a no-op in every iterator).
  if (recycle_.recycler && !recycle_.probe_key.empty()) {
    ArtifactPtr cached = recycle_.recycler->GetOrBuild(
        recycle_.probe_key, recycle_.tables,
        [&]() -> std::shared_ptr<RecycledArtifact> { return BuildProbeArtifact(); });
    probe_ = cached ? std::static_pointer_cast<const GreatDivideProbeArtifact>(cached)
                    : BuildProbeArtifact();
  } else {
    probe_ = BuildProbeArtifact();
  }

  switch (algorithm_) {
    case GreatDivideAlgorithm::kHash: RunHash(*probe_->build, *probe_); break;
    case GreatDivideAlgorithm::kGroup: RunGroupAtATime(*probe_->build, *probe_); break;
  }
}

void GreatDivideIterator::RunHash(const GreatDivideBuildArtifact& build,
                                  const GreatDivideProbeArtifact& probe) {
  // One pass over the dividend maintaining a (candidate × group) match-count
  // matrix; each divisor B number knows which C groups it belongs to.
  size_t k = build.c.count();
  size_t candidates = probe.a.count();
  if (k == 0) return;  // empty divisor: no C groups, empty result
  GovernorFaultPoint("divide.bitmap_fill");
  GovernorCharge(candidates * k * sizeof(uint32_t));  // the match-count matrix
  std::vector<uint32_t> counts(candidates * k, 0);
  GovernorTicker ticker;
  for (size_t i = 0; i < probe.row_b.rows(); ++i) {
    ticker.Tick();
    uint32_t b = probe.row_b.At(i);
    if (b == KeyNumbering::kNotFound) continue;
    uint32_t* row = &counts[size_t{probe.a.row_ids()[i]} * k];
    for (uint32_t gid : build.member_of[b]) row[gid] += 1;
  }
  for (uint32_t cand = 0; cand < candidates; ++cand) {
    const uint32_t* row = &counts[size_t{cand} * k];
    Tuple a_tuple;  // decoded lazily: most candidates qualify for no group
    for (size_t gid = 0; gid < k; ++gid) {
      if (row[gid] != build.group_sizes[gid]) continue;
      if (a_tuple.empty()) a_tuple = probe.a.KeyTuple(cand);
      results_.push_back(ConcatTuples(a_tuple, build.c.KeyTuple(static_cast<uint32_t>(gid))));
    }
  }
}

void GreatDivideIterator::RunGroupAtATime(const GreatDivideBuildArtifact& build,
                                          const GreatDivideProbeArtifact& probe) {
  // Definition 4 executed literally: one small (counting) divide per divisor
  // C group, re-scanning the encoded dividend per group. Group-stamped
  // scratch arrays avoid re-zeroing between groups.
  constexpr uint32_t kNoStamp = UINT32_MAX;
  size_t k = build.c.count();

  // Invert member_of: per group, its B numbers.
  std::vector<std::vector<uint32_t>> group_members(k);
  for (uint32_t b = 0; b < build.member_of.size(); ++b) {
    for (uint32_t gid : build.member_of[b]) group_members[gid].push_back(b);
  }

  GovernorCharge((build.b.count() + 2 * probe.a.count()) * sizeof(uint32_t));
  std::vector<uint32_t> b_stamp(build.b.count(), kNoStamp);
  std::vector<uint32_t> cand_stamp(probe.a.count(), kNoStamp);
  std::vector<uint32_t> cand_count(probe.a.count(), 0);
  GovernorTicker ticker;
  for (uint32_t gid = 0; gid < k; ++gid) {
    for (uint32_t b : group_members[gid]) b_stamp[b] = gid;
    uint32_t group_size = static_cast<uint32_t>(group_members[gid].size());
    for (size_t i = 0; i < probe.row_b.rows(); ++i) {  // full dividend re-scan per group
      ticker.Tick();
      uint32_t b = probe.row_b.At(i);
      if (b == KeyNumbering::kNotFound || b_stamp[b] != gid) continue;
      uint32_t cand = probe.a.row_ids()[i];
      if (cand_stamp[cand] != gid) {
        cand_stamp[cand] = gid;
        cand_count[cand] = 0;
      }
      cand_count[cand] += 1;
    }
    for (uint32_t cand = 0; cand < probe.a.count(); ++cand) {
      if (cand_stamp[cand] == gid && cand_count[cand] == group_size) {
        results_.push_back(ConcatTuples(probe.a.KeyTuple(cand), build.c.KeyTuple(gid)));
      }
    }
  }
}

bool GreatDivideIterator::Next(Tuple* out) {
  if (position_ >= results_.size()) return false;
  *out = results_[position_++];
  CountRow();
  return true;
}

bool GreatDivideIterator::NextBatch(Batch* out) {
  if (!EmitResultBatch(results_, &position_, out)) return false;
  CountRows(out->ActiveRows());
  return true;
}

void GreatDivideIterator::Close() {
  dividend_->Close();
  divisor_->Close();
  results_.clear();
  probe_.reset();
}

Relation ExecGreatDivide(const Relation& dividend, const Relation& divisor,
                         GreatDivideAlgorithm algorithm, TableEncodingPtr dividend_enc,
                         TableEncodingPtr divisor_enc) {
  GreatDivideIterator it(
      std::make_unique<RelationScan>(BorrowRelation(dividend), std::move(dividend_enc)),
      std::make_unique<RelationScan>(BorrowRelation(divisor), std::move(divisor_enc)),
      algorithm);
  return ExecuteToRelation(it);
}

Relation GreatDividePartitioned(const Relation& dividend, const Relation& divisor,
                                size_t threads, TableEncodingPtr dividend_enc) {
  if (threads == 0) throw SchemaError("GreatDividePartitioned needs threads >= 1");
  DivisionAttributes attrs =
      DivisionAttributeSets(dividend.schema(), divisor.schema(), /*allow_c=*/true);
  if (attrs.c.empty()) throw SchemaError("GreatDividePartitioned requires C attributes");

  // Hash-partition the divisor on C. Projections of the partitions on C are
  // disjoint, so by Law 13 the union of the partial results is the answer.
  std::vector<size_t> c_idx = IndicesOf(divisor.schema(), attrs.c);
  std::vector<std::vector<Tuple>> parts(threads);
  TupleHash hasher;
  for (const Tuple& t : divisor.tuples()) {
    parts[hasher(ProjectTuple(t, c_idx)) % threads].push_back(t);
  }

  // One shared dividend encoding: workers translate from it instead of each
  // re-encoding the full dividend (read-only after Build, so no locking).
  if (dividend_enc == nullptr && GetExecMode() != ExecMode::kTuple) {
    dividend_enc = TableEncoding::Build(dividend);
  }

  // Partitions run as tasks on the shared worker pool (exec/scheduler.hpp);
  // the per-partition divisions detect they are on a pool worker and drain
  // inline, so the partitioned strategy composes with the morsel-parallel
  // pipelines without re-entering the pool.
  std::vector<Relation> partial(threads);
  ParallelFor(threads, [&](size_t i) {
    Relation part(divisor.schema(), std::move(parts[i]));
    if (part.empty()) {
      partial[i] = Relation(dividend.schema().Project(attrs.a).Concat(
          divisor.schema().Project(attrs.c)));
    } else {
      partial[i] = ExecGreatDivide(dividend, part, GreatDivideAlgorithm::kHash, dividend_enc);
    }
  });

  std::vector<Tuple> all;
  for (const Relation& r : partial) {
    all.insert(all.end(), r.tuples().begin(), r.tuples().end());
  }
  return Relation(dividend.schema().Project(attrs.a).Concat(divisor.schema().Project(attrs.c)),
                  std::move(all));
}

SetContainmentJoinIterator::SetContainmentJoinIterator(IterPtr left, std::string left_set_attr,
                                                       IterPtr right,
                                                       std::string right_set_attr)
    : left_(std::move(left)),
      right_(std::move(right)),
      schema_(left_->schema().Concat(right_->schema())),
      left_idx_(left_->schema().IndexOfOrThrow(left_set_attr)),
      right_idx_(right_->schema().IndexOfOrThrow(right_set_attr)) {
  if (left_->schema().attribute(left_idx_).type != ValueType::kSet ||
      right_->schema().attribute(right_idx_).type != ValueType::kSet) {
    throw SchemaError("SetContainmentJoinIterator requires set-valued join attributes");
  }
}

void SetContainmentJoinIterator::Open() {
  ResetCount();
  results_.clear();
  position_ = 0;
  left_->Open();
  right_->Open();

  Tuple t;
  std::vector<std::pair<uint64_t, Tuple>> lhs;
  while (left_->Next(&t)) lhs.emplace_back(SetSignature(t[left_idx_].as_set()), t);
  std::vector<std::pair<uint64_t, Tuple>> rhs;
  while (right_->Next(&t)) rhs.emplace_back(SetSignature(t[right_idx_].as_set()), t);

  for (const auto& [sig1, t1] : lhs) {
    const std::vector<Value>& s1 = t1[left_idx_].as_set();
    for (const auto& [sig2, t2] : rhs) {
      // Signature filter: containment implies sig2's bits ⊆ sig1's bits.
      if ((sig1 & sig2) != sig2) continue;
      const std::vector<Value>& s2 = t2[right_idx_].as_set();
      if (std::includes(s1.begin(), s1.end(), s2.begin(), s2.end())) {
        results_.push_back(ConcatTuples(t1, t2));
      }
    }
  }
}

bool SetContainmentJoinIterator::Next(Tuple* out) {
  if (position_ >= results_.size()) return false;
  *out = results_[position_++];
  CountRow();
  return true;
}

bool SetContainmentJoinIterator::NextBatch(Batch* out) {
  if (!EmitResultBatch(results_, &position_, out)) return false;
  CountRows(out->ActiveRows());
  return true;
}

void SetContainmentJoinIterator::Close() {
  left_->Close();
  right_->Close();
  results_.clear();
}

}  // namespace quotient
