#pragma once

// Worker pool for morsel-driven parallel pipelines (see
// docs/parallel_execution.md and exec/pipeline.hpp).
//
// One process-wide pool of GetExecThreads() workers executes the chunk
// tasks of parallel pipeline drains. The pool admits one parallel region at
// a time (regions from different user threads serialize); a drain started
// *on* a pool worker — e.g. a division inside a GreatDividePartitioned
// partition — runs inline instead of re-entering the pool, so nested
// pipelines can never deadlock it.

#include <cstddef>
#include <functional>

namespace quotient {

/// Degree of parallelism for ExecMode::kParallel pipelines. Initialized on
/// first use from QUOTIENT_THREADS (falling back to
/// std::thread::hardware_concurrency), clamped to >= 1. 1 means parallel
/// plumbing runs inline on the calling thread.
size_t GetExecThreads();
void SetExecThreads(size_t threads);

/// RAII helper so tests can sweep thread counts without leaking state.
/// Restores on any unwind (including exceptions), so a faulted test cannot
/// poison the thread-count global for the rest of the suite; non-copyable
/// so an accidental copy can't restore twice.
struct ScopedExecThreads {
  explicit ScopedExecThreads(size_t threads) : saved(GetExecThreads()) {
    SetExecThreads(threads);
  }
  ~ScopedExecThreads() { SetExecThreads(saved); }
  ScopedExecThreads(const ScopedExecThreads&) = delete;
  ScopedExecThreads& operator=(const ScopedExecThreads&) = delete;
  size_t saved;
};

/// True on a pool worker thread: callers must run nested parallel work
/// inline rather than submitting it back to the pool.
bool OnWorkerThread();

/// Runs fn(0) .. fn(tasks - 1) across the worker pool, the calling thread
/// included; blocks until every task finished. Tasks are claimed from an
/// atomic counter, so the assignment of tasks to threads is nondeterministic
/// — callers needing deterministic results must make each task's output
/// independent of that assignment (the pipeline sinks do: one partial state
/// per task index, merged in index order afterwards).
///
/// Runs everything inline when tasks <= 1, GetExecThreads() == 1, or the
/// caller is itself a pool worker. The first exception thrown by any task is
/// rethrown on the calling thread after all tasks drain.
///
/// Lifecycle governance (exec/query_context.hpp): the region owner's
/// current QueryContext is re-installed on every worker for the region's
/// duration, so morsel tasks poll the owning statement's governor. Once a
/// task fails — or the governor trips — remaining not-yet-started tasks are
/// skipped (admission stops); in-flight tasks finish, and the pool stays
/// reusable for the next region.
void ParallelFor(size_t tasks, const std::function<void(size_t)>& fn);

}  // namespace quotient
