#include "exec/iterator.hpp"

#include "exec/query_context.hpp"

namespace quotient {

bool Iterator::NextBatch(Batch* out) {
  // Legacy adapter: wraps the tuple-at-a-time interface so non-batched
  // operators keep working inside batched pipelines. Rows are owned by the
  // batch (NextRef pointees die on the next pull, so they cannot be
  // batched by reference). Next() counts rows itself — no CountRows here.
  out->ResetRows();
  size_t target = GetBatchRows();
  Tuple t;
  while (out->rows() < target && Next(&t)) out->AppendOwnedRow(std::move(t));
  return out->rows() > 0;
}

Relation ExecuteToRelation(Iterator& it) {
  it.Open();
  std::vector<Tuple> tuples;
  if (GetExecMode() != ExecMode::kTuple) {
    Batch batch;
    Tuple t;
    while (it.NextBatch(&batch)) {
      GovernorPoll();
      for (size_t i = 0; i < batch.ActiveRows(); ++i) {
        batch.ToTuple(batch.RowAt(i), &t);
        tuples.push_back(std::move(t));
      }
    }
  } else {
    Tuple t;
    GovernorTicker ticker;
    while (it.Next(&t)) {
      ticker.Tick();
      tuples.push_back(t);
    }
  }
  it.Close();
  return Relation(it.schema(), std::move(tuples));
}

size_t TotalRowsProduced(Iterator& root) {
  size_t total = root.rows_produced();
  for (Iterator* child : root.InputIterators()) total += TotalRowsProduced(*child);
  return total;
}

size_t MaxRowsProduced(Iterator& root) {
  size_t max_rows = root.rows_produced();
  for (Iterator* child : root.InputIterators()) {
    max_rows = std::max(max_rows, MaxRowsProduced(*child));
  }
  return max_rows;
}

size_t MaxPipelineDop(Iterator& root) {
  size_t max_dop = root.pipeline_dop();
  for (Iterator* child : root.InputIterators()) {
    max_dop = std::max(max_dop, MaxPipelineDop(*child));
  }
  return max_dop;
}

namespace {

void Render(Iterator& it, std::string* out, int indent) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  *out += it.name();
  *out += "  rows=" + std::to_string(it.rows_produced());
  // Degree of parallelism of this operator's pipeline drains (recorded by
  // the pipeline executor; 0 = tuple-mode or streaming operator).
  if (it.pipeline_dop() > 0) *out += "  dop=" + std::to_string(it.pipeline_dop());
  *out += "  " + it.schema().ToString() + "\n";
  for (Iterator* child : it.InputIterators()) Render(*child, out, indent + 1);
}

}  // namespace

std::string ExplainTree(Iterator& root) {
  std::string out;
  Render(root, &out, 0);
  return out;
}

}  // namespace quotient
