#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algebra/relation.hpp"
#include "exec/batch.hpp"

namespace quotient {

/// Volcano-style physical operator: Open / Next / Close, tuple at a time,
/// plus the batched contract NextBatch() that moves ~GetBatchRows() rows per
/// virtual call as columns of dictionary ids (see docs/batched_execution.md).
/// Every iterator counts the tuples it produces; ExecStats aggregates those
/// counters over a plan so benchmarks can report intermediate-result sizes
/// (the quantity the Leinders/Van den Bussche result in §6 is about).
class Iterator {
 public:
  virtual ~Iterator() = default;

  /// The output schema; valid before Open().
  virtual const Schema& schema() const = 0;
  /// Acquires resources / builds hash tables. Must be called before Next().
  virtual void Open() = 0;
  /// Produces the next tuple; returns false at end of stream.
  virtual bool Next(Tuple* out) = 0;

  /// Zero-copy variant of Next(): returns a pointer to the next tuple, or
  /// nullptr at end of stream. The pointee is only valid until the next
  /// Next()/NextRef() call. Operators that materialize their input (hash
  /// builds, blocking divisions) drain children through this to avoid a
  /// Tuple copy per row; scans and pass-through operators override it.
  virtual const Tuple* NextRef() {
    return Next(&ref_scratch_) ? &ref_scratch_ : nullptr;
  }

  /// Batched pull: fills `out` with the next 1..GetBatchRows() active rows
  /// (batch-producing operators may emit more when forwarding a child batch
  /// whose selection they only narrow). Returns false at end of stream —
  /// a true return always carries at least one active row. The batch's
  /// contents are valid until the next NextBatch() call on this iterator.
  ///
  /// The default adapter wraps Next(), so every operator participates in
  /// batched plans; operators with a columnar fast path override it. Within
  /// one Open() a caller must commit to one pull discipline — mixing Next()
  /// and NextBatch() pulls on the same iterator double-consumes the stream.
  virtual bool NextBatch(Batch* out);

  /// Releases resources; the iterator may be re-Opened afterwards.
  virtual void Close() = 0;

  /// Operator name for EXPLAIN output.
  virtual const char* name() const = 0;

  /// Children for plan walking (non-owning).
  virtual std::vector<Iterator*> InputIterators() = 0;

  /// Upper-bound row-count hint for pre-sizing buffers and hash tables;
  /// 0 means unknown. Valid before Open().
  virtual size_t EstimatedRows() const { return 0; }

  /// Tuples this operator has produced since Open().
  size_t rows_produced() const { return rows_produced_; }

 protected:
  void CountRow() { ++rows_produced_; }
  /// Batch producers count active rows, not batches, so ExplainTree and
  /// TotalRowsProduced stay comparable across execution modes. The Next()
  /// adapter must NOT call this — the wrapped Next() already counts.
  void CountRows(size_t n) { rows_produced_ += n; }
  void ResetCount() { rows_produced_ = 0; }
  size_t rows_produced_ = 0;

 private:
  Tuple ref_scratch_;  // backing storage for the default NextRef()
};

using IterPtr = std::unique_ptr<Iterator>;

/// Drains `it` (Open/.../Close) into a canonical Relation, pulling batches
/// in ExecMode::kBatch and tuples in ExecMode::kTuple.
Relation ExecuteToRelation(Iterator& it);

/// Sum of rows_produced over the whole plan (call after draining).
size_t TotalRowsProduced(Iterator& root);

/// Largest rows_produced of any single operator in the plan.
size_t MaxRowsProduced(Iterator& root);

/// Indented operator tree with per-operator row counts, for EXPLAIN ANALYZE
/// style output.
std::string ExplainTree(Iterator& root);

}  // namespace quotient
