#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "algebra/relation.hpp"
#include "exec/batch.hpp"

namespace quotient {

/// Volcano-style physical operator: Open / Next / Close, tuple at a time,
/// plus the batched contract NextBatch() that moves ~GetBatchRows() rows per
/// virtual call as columns of dictionary ids (see docs/batched_execution.md).
/// Every iterator counts the tuples it produces; ExecStats aggregates those
/// counters over a plan so benchmarks can report intermediate-result sizes
/// (the quantity the Leinders/Van den Bussche result in §6 is about).
class Iterator {
 public:
  virtual ~Iterator() = default;

  /// The output schema; valid before Open().
  virtual const Schema& schema() const = 0;
  /// Acquires resources / builds hash tables. Must be called before Next().
  virtual void Open() = 0;
  /// Produces the next tuple; returns false at end of stream.
  virtual bool Next(Tuple* out) = 0;

  /// Zero-copy variant of Next(): returns a pointer to the next tuple, or
  /// nullptr at end of stream. The pointee is only valid until the next
  /// Next()/NextRef() call. Operators that materialize their input (hash
  /// builds, blocking divisions) drain children through this to avoid a
  /// Tuple copy per row; scans and pass-through operators override it.
  virtual const Tuple* NextRef() {
    return Next(&ref_scratch_) ? &ref_scratch_ : nullptr;
  }

  /// Batched pull: fills `out` with the next 1..GetBatchRows() active rows
  /// (batch-producing operators may emit more when forwarding a child batch
  /// whose selection they only narrow). Returns false at end of stream —
  /// a true return always carries at least one active row. The batch's
  /// contents are valid until the next NextBatch() call on this iterator.
  ///
  /// The default adapter wraps Next(), so every operator participates in
  /// batched plans; operators with a columnar fast path override it. Within
  /// one Open() a caller must commit to one pull discipline — mixing Next()
  /// and NextBatch() pulls on the same iterator double-consumes the stream.
  virtual bool NextBatch(Batch* out);

  /// Releases resources; the iterator may be re-Opened afterwards.
  virtual void Close() = 0;

  /// Operator name for EXPLAIN output.
  virtual const char* name() const = 0;

  /// Children for plan walking (non-owning).
  virtual std::vector<Iterator*> InputIterators() = 0;

  /// Upper-bound row-count hint for pre-sizing buffers and hash tables;
  /// 0 means unknown. Valid before Open().
  virtual size_t EstimatedRows() const { return 0; }

  /// Cost-model cardinality estimate for this operator's output, set by
  /// the planner from EstimatePlan (opt/cost.hpp); 0 = not set. Unlike
  /// EstimatedRows() — a structural upper bound that forwards child sizes
  /// through filters — this accounts for selectivity and join/division
  /// shrinkage, and the pipeline executor's costed per-pipeline choices
  /// (ChoosePipeline, exec/pipeline.hpp) consult it first.
  double cost_rows_hint() const { return cost_rows_hint_; }
  void set_cost_rows_hint(double rows) { cost_rows_hint_ = rows; }

  /// Indices (into InputIterators()) of the children this operator fully
  /// drains during Open() — the pipeline-breaker edges where the executor
  /// splits the plan into pipelines (exec/pipeline.hpp). Children not
  /// listed stream lazily and belong to this operator's own pipeline.
  virtual std::vector<size_t> BlockingInputs() { return {}; }

  /// Tuples this operator has produced since Open().
  size_t rows_produced() const { return rows_produced_.load(std::memory_order_relaxed); }

  /// Degree of parallelism the last Open() recorded for this operator's
  /// pipeline drains (0 = none recorded; streaming operators never do).
  size_t pipeline_dop() const { return pipeline_dop_; }

  /// Pipeline-executor accounting hook: credits rows produced when a
  /// parallel pipeline reads morsel spans straight from storage instead of
  /// pulling this operator's NextBatch. Keeps EXPLAIN row totals identical
  /// across execution modes and thread counts.
  void AddProducedRows(size_t n) { CountRows(n); }

 protected:
  void CountRow() { rows_produced_.fetch_add(1, std::memory_order_relaxed); }
  /// Batch producers count active rows, not batches, so ExplainTree and
  /// TotalRowsProduced stay comparable across execution modes. The Next()
  /// adapter must NOT call this — the wrapped Next() already counts.
  void CountRows(size_t n) { rows_produced_.fetch_add(n, std::memory_order_relaxed); }
  /// Clears the row counter AND the recorded pipeline parallelism; every
  /// operator calls this at the top of Open().
  void ResetCount() {
    rows_produced_.store(0, std::memory_order_relaxed);
    pipeline_dop_ = 0;
  }
  /// Blocking operators record the parallelism of each drain; EXPLAIN
  /// shows the maximum over this Open()'s pipelines.
  void RecordPipelineDop(size_t dop) { pipeline_dop_ = std::max(pipeline_dop_, dop); }
  // Atomic so workers may account concurrently; the pipeline executor's
  // merge discipline means all updates normally happen on the owning
  // thread, but the counter must stay exact under any future interleaving.
  std::atomic<size_t> rows_produced_{0};
  size_t pipeline_dop_ = 0;

 private:
  Tuple ref_scratch_;  // backing storage for the default NextRef()
  double cost_rows_hint_ = 0;
};

using IterPtr = std::unique_ptr<Iterator>;

/// Drains `it` (Open/.../Close) into a canonical Relation, pulling tuples
/// in ExecMode::kTuple and batches otherwise (kBatch and kParallel).
Relation ExecuteToRelation(Iterator& it);

/// Sum of rows_produced over the whole plan (call after draining).
size_t TotalRowsProduced(Iterator& root);

/// Largest rows_produced of any single operator in the plan.
size_t MaxRowsProduced(Iterator& root);

/// Largest pipeline degree of parallelism recorded anywhere in the plan
/// (0 when every drain ran tuple-at-a-time).
size_t MaxPipelineDop(Iterator& root);

/// Indented operator tree with per-operator row counts, for EXPLAIN ANALYZE
/// style output.
std::string ExplainTree(Iterator& root);

}  // namespace quotient
