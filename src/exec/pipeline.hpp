#pragma once

// Pipeline-based parallel executor (docs/parallel_execution.md).
//
// A physical plan decomposes into pipelines at its breaker edges — child
// streams a blocking operator fully drains during Open(): hash-table
// builds, division codec drains, grouping, set-operation build sides. Each
// such drain is "source → streaming ops → sink", and RunPipeline executes
// it under the current ExecMode:
//
//   kTuple    — the operators' own tuple-at-a-time reference drains (the
//               callers skip RunPipeline entirely, see UseTupleDrain);
//   kBatch    — serial batched pull, exactly the PR 2 discipline;
//   kParallel — morsel-driven: the source's rows are split into contiguous
//               chunks of id spans, a worker pool (exec/scheduler.hpp) runs
//               the batch kernels per chunk into per-chunk partial sink
//               states, and the partials are merged in chunk-index order.
//
// The chunk-ordered merge is what makes parallel execution bit-identical to
// serial batch execution at every thread count: iterating chunks in index
// order and rows within a chunk in row order visits the input in exactly
// the serial row order, so dictionary ids, candidate numberings, group
// numbers, and result emission order all come out the same. Law 13's
// partitioned great divide proved this merge shape correct for division;
// the sinks here generalize it to every hash-based operator.

#include <memory>
#include <string>
#include <vector>

#include "exec/batch.hpp"
#include "exec/iterator.hpp"
#include "exec/key_codec.hpp"

namespace quotient {

/// Target rows per parallel chunk (a "morsel" of contiguous source ids).
/// Chunks grow past this when the input is large relative to the worker
/// count (at most ~4 chunks per worker), and are never smaller than one
/// batch. Default 4096; tests shrink it to force multi-chunk schedules on
/// small fixtures.
size_t GetMorselRows();
void SetMorselRows(size_t rows);

/// Inputs at or under this estimated row count drain tuple-at-a-time even
/// in ExecMode::kParallel: batch/morsel setup costs more than it saves on
/// tiny inputs (the minimal cost-based ExecMode choice from the ROADMAP).
/// Default 64; 0 disables the heuristic (tests use this to force the
/// parallel path on small fixtures).
size_t GetSerialRowThreshold();
void SetSerialRowThreshold(size_t rows);

/// RAII guards for the two knobs above. Like ScopedExecThreads they restore
/// on any unwind (a faulted or cancelled test must not poison the process
/// globals for the rest of the suite) and are non-copyable so an accidental
/// copy cannot restore twice.
struct ScopedMorselRows {
  explicit ScopedMorselRows(size_t rows) : saved(GetMorselRows()) { SetMorselRows(rows); }
  ~ScopedMorselRows() { SetMorselRows(saved); }
  ScopedMorselRows(const ScopedMorselRows&) = delete;
  ScopedMorselRows& operator=(const ScopedMorselRows&) = delete;
  size_t saved;
};
struct ScopedSerialRowThreshold {
  explicit ScopedSerialRowThreshold(size_t rows) : saved(GetSerialRowThreshold()) {
    SetSerialRowThreshold(rows);
  }
  ~ScopedSerialRowThreshold() { SetSerialRowThreshold(saved); }
  ScopedSerialRowThreshold(const ScopedSerialRowThreshold&) = delete;
  ScopedSerialRowThreshold& operator=(const ScopedSerialRowThreshold&) = delete;
  size_t saved;
};

/// Costed per-pipeline execution choice (the cost-driven physical choices
/// from the ROADMAP): drain discipline, worker cap, and morsel-size floor,
/// derived from the pipeline source's cost-model cardinality
/// (Iterator::cost_rows_hint, set by the planner from opt/cost.hpp) with
/// EstimatedRows() as the structural fallback. Defaults reproduce the
/// legacy behavior exactly — and are always returned when the serial row
/// threshold is 0, the setting tests use to force the parallel path on
/// small fixtures regardless of estimates.
struct PipelineChoice {
  /// Drain tuple-at-a-time (estimate at or under the serial threshold).
  bool tuple = false;
  /// Cap on workers for this pipeline; 0 = no cap (use GetExecThreads()).
  /// Realized by growing chunks, so results stay bit-identical.
  size_t workers = 0;
  /// Extra floor on rows per chunk; 0 = the global GetMorselRows() floor.
  size_t morsel_rows = 0;
};

/// Decided once per pipeline drain, so one operator may drain a tiny
/// divisor tuple-wise while morsel-parallelizing a large dividend.
PipelineChoice ChoosePipeline(const Iterator& child);

/// True when a blocking operator should drain `child` with its
/// tuple-at-a-time reference path: always in ExecMode::kTuple, and in
/// ExecMode::kParallel when ChoosePipeline picks the tuple discipline.
bool UseTupleDrain(const Iterator& child);

/// Partial state of one chunk of a parallel pipeline. Chunks are created
/// up front, written by exactly one worker task, and merged in chunk-index
/// order on the owning thread.
class SinkChunk {
 public:
  virtual ~SinkChunk() = default;
};

/// Where a pipeline's rows land: a blocking operator's build state. A sink
/// must implement both disciplines —
///   ConsumeSerial : fold batches straight into the final state (serial
///                   runs pay zero partial/merge overhead);
///   MakeChunk / Consume / Merge : per-chunk partial states for parallel
///                   runs; Consume is called concurrently on distinct
///                   chunks and must only touch the chunk plus immutable
///                   shared state; Merge runs serially in chunk order.
class PipelineSink {
 public:
  virtual ~PipelineSink() = default;
  virtual void ConsumeSerial(const Batch& batch) = 0;
  virtual std::unique_ptr<SinkChunk> MakeChunk() = 0;
  virtual void Consume(SinkChunk& chunk, const Batch& batch) = 0;
  virtual void Merge(SinkChunk& chunk) = 0;
  /// Sinks whose merge cannot reproduce the serial fold exactly (e.g.
  /// floating-point sums) return false to force the serial discipline.
  virtual bool AllowParallel() const { return true; }
};

/// What RunPipeline did, for EXPLAIN accounting.
struct PipelineStats {
  size_t rows = 0;    // active rows the sink consumed
  size_t chunks = 1;  // partial states used (1 = serial)
  size_t dop = 1;     // worker parallelism usable for those chunks
};

/// Drains `child` (already Open()ed) into `sink` under the current
/// ExecMode; see the file comment for the disciplines. Parallel runs
/// require the pipeline's source rows to be chunkable: a RelationScan
/// source (under any chain of pass-through ρ) is split into id-span
/// morsels read directly from storage; any other source is drained
/// serially into buffered batches first and the batch kernels + sink work
/// are parallelized over those.
PipelineStats RunPipeline(Iterator& child, PipelineSink& sink);

// ---------------------------------------------------------------- sinks
// Reusable sinks for the standard drain shapes. All merges go through
// KeyCodec::AppendTranslated, which re-interns each chunk's values in
// chunk-row order — the serial id assignment, reproduced exactly.

/// Appends the stream's key columns into one or more target KeyCodecs
/// (division divisor drains, semi-join builds; the great divide's divisor
/// feeds its B and C codecs from one pass via AddTarget).
class CodecAppendSink : public PipelineSink {
 public:
  CodecAppendSink(KeyCodec* target, const std::vector<size_t>* indices) {
    AddTarget(target, indices);
  }
  void AddTarget(KeyCodec* target, const std::vector<size_t>* indices);

  void ConsumeSerial(const Batch& batch) override;
  std::unique_ptr<SinkChunk> MakeChunk() override;
  void Consume(SinkChunk& chunk, const Batch& batch) override;
  void Merge(SinkChunk& chunk) override;

 private:
  struct Chunk;
  std::vector<KeyCodec*> targets_;
  std::vector<const std::vector<size_t>*> indices_;
  std::vector<BatchCodecAppender> serial_;
};

/// The probe-side drain of ÷ and ÷*: appends the dividend's A columns into
/// `a_codec` and resolves each row's B columns against a sealed divisor
/// numbering into `row_b` (KeyNumbering::kNotFound = miss), both in row
/// order. `row_b` is a stride-1 SpilledU32Store, so huge probe columns
/// flush to disk past the governor's spill watermark.
class ProbeAppendSink : public PipelineSink {
 public:
  ProbeAppendSink(KeyCodec* a_codec, const std::vector<size_t>* a_indices,
                  const KeyNumbering* numbering, const KeyCodec* b_codec,
                  const std::vector<size_t>* b_indices, SpilledU32Store* row_b);

  void ConsumeSerial(const Batch& batch) override;
  std::unique_ptr<SinkChunk> MakeChunk() override;
  void Consume(SinkChunk& chunk, const Batch& batch) override;
  void Merge(SinkChunk& chunk) override;

 private:
  struct Chunk;
  KeyCodec* a_codec_;
  const std::vector<size_t>* a_indices_;
  const KeyNumbering* numbering_;
  const KeyCodec* b_codec_;
  const std::vector<size_t>* b_indices_;
  SpilledU32Store* row_b_;
  std::vector<uint32_t> scratch_;  // per-batch resolved ids before Append
  BatchCodecAppender serial_append_;
  BatchKeyProbe serial_probe_;
};

/// Hash-join build drain: key columns into `codec`, plus one materialized
/// Tuple per build row into `rows` (projected to `proj` when given, the
/// whole row otherwise), in row order.
class JoinBuildSink : public PipelineSink {
 public:
  JoinBuildSink(KeyCodec* codec, const std::vector<size_t>* key_indices,
                const std::vector<size_t>* proj, std::vector<Tuple>* rows);

  void ConsumeSerial(const Batch& batch) override;
  std::unique_ptr<SinkChunk> MakeChunk() override;
  void Consume(SinkChunk& chunk, const Batch& batch) override;
  void Merge(SinkChunk& chunk) override;

 private:
  struct Chunk;
  KeyCodec* codec_;
  const std::vector<size_t>* key_indices_;
  const std::vector<size_t>* proj_;  // nullptr = materialize whole rows
  std::vector<Tuple>* rows_;
  BatchCodecAppender serial_;
};

// -------------------------------------------- plan-level decomposition
// Introspection over a built physical plan: the pipelines RunPipeline will
// execute, derived from each operator's BlockingInputs() edges. EXPLAIN
// uses this to report the plan's pipeline structure and per-pipeline
// degree of parallelism.

struct PipelineDesc {
  Iterator* sink = nullptr;            // breaker (or root) terminating the pipeline
  std::vector<Iterator*> ops;          // source-to-sink operator chain
};

/// All pipelines of the plan, sources before the pipelines that consume
/// their output (children listed before parents).
std::vector<PipelineDesc> DecomposePipelines(Iterator& root);

/// One line per pipeline: "pipeline 0 dop=4: Scan -> HashDivision". Call
/// after execution to see the recorded per-pipeline parallelism.
std::string DescribePipelines(Iterator& root);

}  // namespace quotient
