#pragma once

// Spill-to-disk build state (docs/robustness.md).
//
// PR 6's governor turned memory pressure into a clean kResourceExhausted
// trip; this subsystem turns it into graceful degradation instead. A
// statement configured with SessionOptions::spill_watermark_bytes gets a
// per-query SpillManager hanging off its QueryContext, and every governed
// uint32 id-column build (the codec row stores behind CodecAppendSink /
// ProbeAppendSink / JoinBuildSink, and the division operators' probe
// columns) lives in a SpilledU32Store: a flat append-only array that, when
// the governor's OUTSTANDING byte account crosses the soft watermark,
// flushes its complete rows to the statement's anonymous temp file,
// releases their charge, and keeps appending. Reads transparently page
// spilled runs back through a small cache, so the algorithm phases are
// oblivious to where the rows live — results are bit-identical to the
// in-memory path at every thread count, because spilling never reorders
// rows (each store flushes its own prefix in append order).
//
// The hard budget (memory_budget_bytes) still trips kResourceExhausted
// exactly as before; the watermark must sit below it, since a store
// charges an append before it checks whether to flush.
//
// Concurrency: one SpillManager is shared by every store of a statement
// (including per-worker chunk stores during a parallel drain). Write is
// mutex-serialized and hands each flush a unique file range; Read is
// lock-free (pread). Any single store is written by exactly one thread at
// a time and read after its writes are joined — the pipeline's existing
// chunk-merge ordering provides the happens-before edges.
//
// Fault sites: spill.open, spill.write, spill.disk_full (per partition
// write), spill.read — all in FaultInjector::KnownSites(), so every I/O
// failure path is deterministically testable; Write/Read also poll the
// governor, so cancellation and deadlines land mid-spill.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace quotient {

class QueryContext;

/// Per-query temp-file writer: one anonymous file (created with mkstemp and
/// immediately unlinked, so any exit reclaims the space), opened lazily on
/// the first flush. One Write call == one spill partition; the counters
/// feed ExecProfile::spill_partitions / spill_bytes_written.
class SpillManager {
 public:
  /// `dir`: where to create the temp file; empty means $TMPDIR or /tmp.
  explicit SpillManager(std::string dir);
  ~SpillManager();
  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Appends `bytes` bytes as one partition; returns its file offset.
  /// Serialized internally; polls the governor and consults the
  /// spill.open / spill.write / spill.disk_full fault sites. Throws
  /// QueryAbort on I/O failure.
  uint64_t Write(const void* data, size_t bytes);

  /// Reads `bytes` bytes at `offset` (a range some Write returned).
  /// Lock-free; polls the governor and consults spill.read.
  void Read(void* dst, size_t bytes, uint64_t offset);

  size_t partitions() const { return partitions_.load(std::memory_order_relaxed); }
  size_t bytes_written() const { return bytes_written_.load(std::memory_order_relaxed); }

 private:
  void EnsureOpenLocked();

  std::string dir_;
  std::mutex mutex_;               // serializes open + write + end_
  std::atomic<int> fd_{-1};        // set once under mutex_, read lock-free
  uint64_t end_ = 0;               // next write offset (under mutex_)
  std::atomic<size_t> partitions_{0};
  std::atomic<size_t> bytes_written_{0};
};

/// An append-only array of fixed-stride uint32 rows that spills its prefix
/// to the current query's SpillManager when the governor crosses the soft
/// watermark. Appends charge the governor (8 bytes per id, matching the
/// coarse accounting the sinks used before); a flush releases the charge
/// for the rows it moved to disk.
///
/// The default-constructed store has stride 0 and is inert (supports
/// zero-key-column codecs: Row() returns nullptr, rows() counts only what
/// callers Append with nrows > 0 — which for stride 0 is nothing).
///
/// Writes are single-threaded per store; reads are single-threaded per
/// store (a mutable page cache serves spilled rows). Row(i) stays valid
/// only until the next Row/At call.
class SpilledU32Store {
 public:
  SpilledU32Store() = default;
  explicit SpilledU32Store(size_t stride) : stride_(stride) {}
  ~SpilledU32Store() = default;  // never releases charges: may outlive the ctx

  SpilledU32Store(SpilledU32Store&& other) noexcept { *this = std::move(other); }
  SpilledU32Store& operator=(SpilledU32Store&& other) noexcept;
  SpilledU32Store(const SpilledU32Store&) = delete;
  SpilledU32Store& operator=(const SpilledU32Store&) = delete;

  /// Reserves in-memory capacity for `rows` rows, clamped to the spill
  /// watermark when one is active (no point reserving what will flush).
  void Reserve(size_t rows);

  /// Appends `nrows` complete rows (nrows * stride ids), then flushes to
  /// disk if the governor is past the watermark.
  void Append(const uint32_t* ids, size_t nrows);

  /// Stride-1 convenience append.
  void PushBack(uint32_t id) { Append(&id, 1); }

  /// Pointer to row `row`'s `stride` ids; for spilled rows, served from a
  /// page cache and valid only until the next Row/At call.
  const uint32_t* Row(size_t row) const;

  /// Stride-1 convenience read.
  uint32_t At(size_t row) const { return *Row(row); }

  size_t rows() const { return rows_; }
  size_t stride() const { return stride_; }

  /// Drops all rows (memory and spilled-run bookkeeping). Does NOT release
  /// governor charges — see ReleaseCharges().
  void Clear();

  /// Releases this store's outstanding governor charge (for transient
  /// chunk-local stores whose rows were merged elsewhere). Only call while
  /// the charging QueryContext is alive — i.e. from executor code.
  void ReleaseCharges();

  /// Releases the outstanding charge AND forgets the charging context and
  /// spill file, so the store can outlive the query that built it (recycled
  /// build state, exec/recycler.hpp). Only valid for stores that never
  /// spilled (!on_disk()): a spilled store reads through the per-query temp
  /// file. Only call while the charging QueryContext is alive.
  void DetachCharges();

  /// True when some rows were flushed to the spill file. Reads of such rows
  /// go through a mutable page cache and a per-query file — an on-disk
  /// store is single-reader and must never be shared across queries.
  bool on_disk() const { return !runs_.empty(); }

 private:
  struct Run {
    uint64_t offset;    // file offset of the run
    size_t first_row;   // global index of its first row
    size_t nrows;
  };

  void MaybeSpill();
  void Flush();
  const uint32_t* SpilledRow(size_t row) const;

  size_t stride_ = 0;
  size_t rows_ = 0;            // total rows (spilled + in memory)
  size_t mem_first_row_ = 0;   // global index of mem_'s first row
  std::vector<uint32_t> mem_;
  std::vector<Run> runs_;      // ascending first_row
  SpillManager* spill_ = nullptr;  // cached at first flush, for reads

  size_t charged_ = 0;             // bytes charged and not yet released
  QueryContext* charge_ctx_ = nullptr;

  // Read cache for spilled rows (single-threaded readers only).
  mutable std::vector<uint32_t> cache_;
  mutable size_t cache_first_row_ = 0;
  mutable size_t cache_rows_ = 0;
};

}  // namespace quotient
