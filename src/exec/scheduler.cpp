#include "exec/scheduler.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/query_context.hpp"

namespace quotient {

namespace {

thread_local bool tls_on_worker = false;

/// Marks the region owner as a worker while it drains tasks: a task that
/// runs on the owner thread and starts a nested ParallelFor must execute
/// inline (like tasks on pool workers do), not re-acquire the region
/// mutex on the same thread.
struct ScopedWorkerMark {
  ScopedWorkerMark() : saved(tls_on_worker) { tls_on_worker = true; }
  ~ScopedWorkerMark() { tls_on_worker = saved; }
  bool saved;
};

size_t DefaultThreads() {
  if (const char* env = std::getenv("QUOTIENT_THREADS")) {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) return static_cast<size_t>(parsed);
  }
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::atomic<size_t>& ThreadsFlag() {
  static std::atomic<size_t> threads{DefaultThreads()};
  return threads;
}

/// The process-wide pool. Workers park on `work_cv` between regions and
/// claim task indices from an atomic counter during one; the region owner
/// participates as the (threads)-th worker. Leaked at exit so parked
/// workers never race static destruction.
struct Pool {
  std::mutex region_mutex;  // admits one parallel region at a time

  std::mutex m;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::vector<std::thread> workers;
  bool stop = false;

  // Current region's job (written by the owner before bumping generation).
  uint64_t generation = 0;  // guarded by m
  const std::function<void(size_t)>* fn = nullptr;
  size_t count = 0;
  QueryContext* context = nullptr;  // region owner's governor, if any
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::atomic<bool> failed{false};  // a task threw: stop admitting tasks
  size_t active_workers = 0;  // workers inside DrainTasks, guarded by m
  std::exception_ptr error;   // first task error, guarded by m

  void RunTask(const std::function<void(size_t)>& f, size_t index) {
    try {
      GovernorFaultPoint("scheduler.task");
      f(index);
    } catch (...) {
      failed.store(true, std::memory_order_release);
      std::lock_guard<std::mutex> lock(m);
      if (!error) error = std::current_exception();
    }
  }

  /// Claims and runs tasks until the counter is exhausted; signals the
  /// owner when the last task finishes. Once a task fails — or the region's
  /// governor trips — remaining tasks are claimed but skipped: a cancelled
  /// region stops admitting morsels while in-flight ones run to completion,
  /// and the pool is immediately reusable.
  void DrainTasks(const std::function<void(size_t)>& f, size_t task_count,
                  QueryContext* ctx) {
    ScopedQueryContext scope(ctx);
    while (true) {
      size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= task_count) break;
      bool skip = failed.load(std::memory_order_acquire) || (ctx != nullptr && ctx->Aborted());
      if (!skip) RunTask(f, index);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == task_count) {
        std::lock_guard<std::mutex> lock(m);
        done_cv.notify_all();
      }
    }
  }

  void WorkerLoop() {
    tls_on_worker = true;
    uint64_t seen;
    {
      // Start in sync with the current generation: a worker spawned after
      // regions already ran must wait for the next job, not chase an old
      // generation number.
      std::lock_guard<std::mutex> lock(m);
      seen = generation;
    }
    while (true) {
      const std::function<void(size_t)>* f = nullptr;
      size_t task_count = 0;
      QueryContext* ctx = nullptr;
      {
        std::unique_lock<std::mutex> lock(m);
        work_cv.wait(lock, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
        // A finished region invalidates its job slot before the owner
        // returns; a stale wakeup (the bump observed after that region
        // ended) must not touch the dangling fn or the recycled counters.
        if (fn == nullptr) continue;
        f = fn;
        task_count = count;
        ctx = context;
        ++active_workers;
      }
      DrainTasks(*f, task_count, ctx);
      {
        // The owner must not recycle the job slots (fn, count, the atomic
        // counters) while any worker can still touch them: it waits for
        // active_workers to drain back to zero, not just for done == count.
        std::lock_guard<std::mutex> lock(m);
        if (--active_workers == 0) done_cv.notify_all();
      }
    }
  }

  /// Resizes the worker set; only called by a region owner while holding
  /// region_mutex and with no job in flight.
  void EnsureWorkers(size_t want) {
    if (workers.size() == want) return;
    {
      std::lock_guard<std::mutex> lock(m);
      stop = true;
    }
    work_cv.notify_all();
    for (std::thread& w : workers) w.join();
    workers.clear();
    {
      std::lock_guard<std::mutex> lock(m);
      stop = false;
    }
    workers.reserve(want);
    for (size_t i = 0; i < want; ++i) workers.emplace_back([this] { WorkerLoop(); });
  }
};

Pool& ThePool() {
  static Pool* pool = new Pool();  // leaked deliberately (see struct comment)
  return *pool;
}

}  // namespace

size_t GetExecThreads() { return ThreadsFlag().load(std::memory_order_relaxed); }

void SetExecThreads(size_t threads) {
  ThreadsFlag().store(threads == 0 ? 1 : threads, std::memory_order_relaxed);
}

bool OnWorkerThread() { return tls_on_worker; }

void ParallelFor(size_t tasks, const std::function<void(size_t)>& fn) {
  if (tasks == 0) return;
  size_t threads = GetExecThreads();
  if (tasks == 1 || threads <= 1 || tls_on_worker) {
    for (size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }

  QueryContext* ctx = CurrentQueryContext();

  Pool& pool = ThePool();
  std::lock_guard<std::mutex> region(pool.region_mutex);
  pool.EnsureWorkers(threads - 1);  // the owner participates below
  {
    std::lock_guard<std::mutex> lock(pool.m);
    pool.fn = &fn;
    pool.count = tasks;
    pool.context = ctx;
    pool.next.store(0, std::memory_order_relaxed);
    pool.done.store(0, std::memory_order_relaxed);
    pool.failed.store(false, std::memory_order_relaxed);
    pool.error = nullptr;
    ++pool.generation;
  }
  pool.work_cv.notify_all();
  {
    ScopedWorkerMark mark;  // nested ParallelFor from owner-run tasks inlines
    pool.DrainTasks(fn, tasks, ctx);
  }

  std::unique_lock<std::mutex> lock(pool.m);
  pool.done_cv.wait(lock, [&] {
    return pool.done.load(std::memory_order_acquire) == tasks && pool.active_workers == 0;
  });
  // Invalidate the job slot before returning: `fn` points at the caller's
  // stack, and a worker waking late off this region's generation bump must
  // find nothing to run (see WorkerLoop).
  pool.fn = nullptr;
  pool.count = 0;
  pool.context = nullptr;
  if (pool.error) {
    std::exception_ptr error = pool.error;
    pool.error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace quotient
