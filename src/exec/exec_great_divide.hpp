#pragma once

#include <memory>

#include "algebra/divide.hpp"
#include "exec/iterator.hpp"
#include "exec/key_codec.hpp"
#include "exec/recycler.hpp"

namespace quotient {

/// Physical great-divide algorithms (Rantzau et al. [36] style):
///   kHash   — one pass over the dividend; each divisor B value knows which
///             C-groups it belongs to; per (candidate, group) match counters.
///   kGroup  — group-at-a-time: a small divide per divisor C-group
///             (literally Definition 4); re-scans the dividend per group.
enum class GreatDivideAlgorithm { kHash, kGroup };

const char* GreatDivideAlgorithmName(GreatDivideAlgorithm algorithm);

/// Blocking great-divide operator; output schema A ∪ C.
class GreatDivideIterator : public Iterator {
 public:
  GreatDivideIterator(IterPtr dividend, IterPtr divisor, GreatDivideAlgorithm algorithm);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  bool NextBatch(Batch* out) override;
  void Close() override;
  const char* name() const override { return GreatDivideAlgorithmName(algorithm_); }
  std::vector<Iterator*> InputIterators() override {
    return {dividend_.get(), divisor_.get()};
  }
  std::vector<size_t> BlockingInputs() override { return {0, 1}; }

  /// Attaches the planner-composed recycling directive (exec/recycler.hpp).
  void SetRecycle(RecycleSpec spec) { recycle_ = std::move(spec); }

 private:
  // The key-encoded inputs both algorithms run over live in the artifact
  // types (exec/recycler.hpp): divisor B values and C groups numbered
  // densely (GreatDivideBuildArtifact), every dividend row carrying its
  // candidate number and divisor-B number (GreatDivideProbeArtifact).
  std::shared_ptr<GreatDivideBuildArtifact> BuildDivisorArtifact();
  std::shared_ptr<GreatDivideProbeArtifact> BuildProbeArtifact();

  void RunHash(const GreatDivideBuildArtifact& build,
               const GreatDivideProbeArtifact& probe);
  void RunGroupAtATime(const GreatDivideBuildArtifact& build,
                       const GreatDivideProbeArtifact& probe);

  IterPtr dividend_;
  IterPtr divisor_;
  GreatDivideAlgorithm algorithm_;
  Schema schema_;
  std::vector<size_t> a_idx_;
  std::vector<size_t> b_idx_;
  std::vector<size_t> divisor_b_idx_;
  std::vector<size_t> divisor_c_idx_;
  RecycleSpec recycle_;

  std::shared_ptr<const GreatDivideProbeArtifact> probe_;
  std::vector<Tuple> results_;
  size_t position_ = 0;
};

/// Law 13 as an executable strategy: partitions the divisor's C-groups into
/// `threads` disjoint parts (hash on C), runs a hash great divide per part
/// in parallel against the shared dividend, and unions the results. Correct
/// because the partition projections on C are disjoint by construction.
/// The dividend's table encoding is built once and shared by every worker
/// (it is read-only after Build), so partitions stop re-encoding the
/// dividend — the cache behavior ROADMAP item 2 asks for. Callers holding a
/// cached encoding (Catalog::Encoding) pass it to skip even that one build.
Relation GreatDividePartitioned(const Relation& dividend, const Relation& divisor,
                                size_t threads, TableEncodingPtr dividend_enc = nullptr);

/// Convenience: run one algorithm on materialized relations. Optional
/// pre-built table encodings let repeated calls skip re-encoding inputs in
/// batch mode.
Relation ExecGreatDivide(const Relation& dividend, const Relation& divisor,
                         GreatDivideAlgorithm algorithm,
                         TableEncodingPtr dividend_enc = nullptr,
                         TableEncodingPtr divisor_enc = nullptr);

/// Physical set containment join r1 ⋈_{b1⊇b2} r2 with a 64-bit signature
/// pre-filter (Helmer/Moerkotte style): sig(s2) ⊄ sig(s1) disproves
/// containment without touching the elements.
class SetContainmentJoinIterator : public Iterator {
 public:
  SetContainmentJoinIterator(IterPtr left, std::string left_set_attr, IterPtr right,
                             std::string right_set_attr);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Tuple* out) override;
  bool NextBatch(Batch* out) override;
  void Close() override;
  const char* name() const override { return "SetContainmentJoin"; }
  std::vector<Iterator*> InputIterators() override { return {left_.get(), right_.get()}; }
  std::vector<size_t> BlockingInputs() override { return {0, 1}; }

 private:
  IterPtr left_;
  IterPtr right_;
  Schema schema_;
  size_t left_idx_;
  size_t right_idx_;
  std::vector<Tuple> results_;
  size_t position_ = 0;
};

}  // namespace quotient
