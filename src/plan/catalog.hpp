#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "algebra/relation.hpp"
#include "exec/batch.hpp"

namespace quotient {

/// A named collection of base relations plus the integrity metadata the
/// rewrite rules consult for their data-dependent preconditions:
///
///  * keys            — Laws 11/12 need "each group has one tuple";
///  * foreign keys    — Law 12 needs r2.B ⊆ πB(r1), Example 3 needs
///                      πb2(r2) ⊆ r1**;
///  * disjointness    — Laws 2 (condition c2), 7, and 13 need disjoint
///                      projections of two inputs.
///
/// Metadata can be declared (trusted, as an RDBMS trusts its constraints) or
/// verified against the stored data with the Check* functions.
///
/// Thread-safety: a catalog is shared-immutable during query execution —
/// any number of threads may call the const read interface (Get, Encoding,
/// the metadata queries) concurrently, including the pipeline executor's
/// morsel workers. Put() and the Declare* mutators require external
/// exclusivity (no concurrent readers), like DDL against a live table.
///
/// Relations are stored behind shared_ptr, so copying a catalog is O(#
/// tables) regardless of data size and copies SHARE table storage and
/// cached encodings with the original — this is what makes the Database's
/// copy-on-write snapshot publication (api/database.hpp) cheap. A copy
/// followed by Put() replaces one entry without disturbing readers of the
/// original.
class Catalog {
 public:
  Catalog() = default;
  // The encoding cache's mutex is not copyable/movable; copies carry the
  // cached encodings over (they are immutable and describe identical data).
  Catalog(const Catalog& other);
  Catalog& operator=(const Catalog& other);
  Catalog(Catalog&& other) noexcept;
  Catalog& operator=(Catalog&& other) noexcept;

  /// Registers (or replaces) a base relation.
  void Put(const std::string& name, Relation relation);
  /// Same, adopting shared ownership instead of copying — the transaction
  /// overlay and commit publication (api/txn.hpp) hand the same immutable
  /// rows to several catalogs without duplicating storage.
  void Put(const std::string& name, std::shared_ptr<const Relation> relation);

  /// Monotonic per-table data version: bumped by every Put() of the table.
  /// Copies carry versions over, and the Database serializes DDL, so within
  /// one Database lineage two catalogs agree on a table's version iff they
  /// hold the same data for it. Zero for unknown tables. This is what keys
  /// recycled build artifacts (exec/recycler.hpp) to table contents.
  uint64_t DataVersion(const std::string& name) const;

  bool Has(const std::string& name) const;
  /// Throws SchemaError if absent.
  const Relation& Get(const std::string& name) const;
  /// Owning handle to the stored relation: scans hold this so open cursors
  /// keep their storage alive even after DDL publishes a newer snapshot.
  std::shared_ptr<const Relation> GetShared(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// The table's column-dictionary encoding (see exec/batch.hpp), built on
  /// first request and cached until Put() replaces the relation. Scans over
  /// catalog tables share it, so repeated queries — and the Law 13
  /// partitioned great divide — stop rebuilding dictionaries on every
  /// Open(). Thread-safe: concurrent requests for the same table share one
  /// build (the first caller constructs, the rest wait on its future) and
  /// requests for different tables build concurrently — the cache mutex is
  /// never held across dictionary construction. The returned encoding is
  /// immutable and outlives later invalidation (callers hold a shared_ptr).
  TableEncodingPtr Encoding(const std::string& name) const;

  /// Non-blocking peek at the encoding cache: the cached encoding when a
  /// finished build is present, nullptr otherwise. Never triggers (or waits
  /// on) a build, so callers off the execution path — the optimizer's
  /// statistics harvest (opt/stats.hpp) — can reuse dictionaries without
  /// consuming governed build work that belongs to query execution.
  TableEncodingPtr EncodingIfCached(const std::string& name) const;

  /// Declares `attrs` a key of `table`.
  void DeclareKey(const std::string& table, const std::vector<std::string>& attrs);
  /// True iff a declared key of `table` is a subset of `attrs`.
  bool ImpliesKey(const std::string& table, const std::vector<std::string>& attrs) const;

  /// Declares a foreign key: π_attrs(from_table) ⊆ π_attrs(to_table).
  void DeclareForeignKey(const std::string& from_table, const std::vector<std::string>& attrs,
                         const std::string& to_table);
  bool HasForeignKey(const std::string& from_table, const std::vector<std::string>& attrs,
                     const std::string& to_table) const;

  /// Declares π_attrs(table1) ∩ π_attrs(table2) = ∅.
  void DeclareDisjoint(const std::string& table1, const std::string& table2,
                       const std::vector<std::string>& attrs);
  bool AreDisjoint(const std::string& table1, const std::string& table2,
                   const std::vector<std::string>& attrs) const;

  /// Verifies a declared-style key property against the data.
  static bool CheckKey(const Relation& r, const std::vector<std::string>& attrs);
  /// Verifies π_attrs(from) ⊆ π_attrs(to) against the data.
  static bool CheckForeignKey(const Relation& from, const Relation& to,
                              const std::vector<std::string>& attrs);
  /// Verifies π_attrs(r1) ∩ π_attrs(r2) = ∅ against the data.
  static bool CheckDisjoint(const Relation& r1, const Relation& r2,
                            const std::vector<std::string>& attrs);

 private:
  static std::string KeyOf(const std::string& table, const std::vector<std::string>& attrs);

  std::map<std::string, std::shared_ptr<const Relation>> relations_;
  std::map<std::string, uint64_t> data_versions_;  // Put() count per table
  std::set<std::string> keys_;          // "table|a,b"
  std::set<std::string> foreign_keys_;  // "from|a,b|to"
  std::set<std::string> disjoint_;      // "t1|t2|a,b" (stored both ways)
  // Lazily built per-table dictionary encodings (ROADMAP item 2). Each
  // entry is a shared future so concurrent first requests for one table
  // never race on (or duplicate) dictionary construction; the build itself
  // runs outside encodings_mutex_.
  mutable std::mutex encodings_mutex_;
  mutable std::map<std::string, std::shared_future<TableEncodingPtr>> encodings_;
};

}  // namespace quotient
