#include "plan/logical.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace quotient {

namespace {


void RequirePredicateColumns(const ExprPtr& predicate, const Schema& schema,
                             const char* where) {
  for (const std::string& column : predicate->Columns()) {
    if (!schema.Contains(column)) {
      throw SchemaError(std::string(where) + ": predicate references unknown attribute '" +
                        column + "' (schema " + schema.ToString() + ")");
    }
  }
}

void RequireSameAttributeSet(const Schema& a, const Schema& b, const char* op) {
  if (!a.SameAttributeSet(b)) {
    throw SchemaError(std::string(op) + " requires union-compatible inputs, got " +
                      a.ToString() + " and " + b.ToString());
  }
}

}  // namespace

const char* LogicalOp::KindName(Kind kind) {
  switch (kind) {
    case Kind::kScan: return "Scan";
    case Kind::kValues: return "Values";
    case Kind::kSelect: return "Select";
    case Kind::kProject: return "Project";
    case Kind::kUnion: return "Union";
    case Kind::kIntersect: return "Intersect";
    case Kind::kDifference: return "Difference";
    case Kind::kProduct: return "Product";
    case Kind::kThetaJoin: return "ThetaJoin";
    case Kind::kNaturalJoin: return "NaturalJoin";
    case Kind::kSemiJoin: return "SemiJoin";
    case Kind::kAntiJoin: return "AntiJoin";
    case Kind::kDivide: return "Divide";
    case Kind::kGreatDivide: return "GreatDivide";
    case Kind::kGroupBy: return "GroupBy";
    case Kind::kRename: return "Rename";
  }
  return "?";
}

PlanPtr LogicalOp::Scan(const Catalog& catalog, std::string table) {
  auto op = New();
  op->kind_ = Kind::kScan;
  op->schema_ = catalog.Get(table).schema();
  op->table_ = std::move(table);
  return op;
}

PlanPtr LogicalOp::Values(Relation relation, std::string label) {
  auto op = New();
  op->kind_ = Kind::kValues;
  op->schema_ = relation.schema();
  op->table_ = std::move(label);
  op->values_ = std::make_shared<const Relation>(std::move(relation));
  return op;
}

PlanPtr LogicalOp::Select(PlanPtr child, ExprPtr predicate) {
  RequirePredicateColumns(predicate, child->schema(), "Select");
  auto op = New();
  op->kind_ = Kind::kSelect;
  op->schema_ = child->schema();
  op->children_ = {std::move(child)};
  op->predicate_ = std::move(predicate);
  return op;
}

PlanPtr LogicalOp::Project(PlanPtr child, std::vector<std::string> columns) {
  auto op = New();
  op->kind_ = Kind::kProject;
  op->schema_ = child->schema().Project(columns);
  op->children_ = {std::move(child)};
  op->columns_ = std::move(columns);
  return op;
}

PlanPtr LogicalOp::Union(PlanPtr left, PlanPtr right) {
  RequireSameAttributeSet(left->schema(), right->schema(), "Union");
  auto op = New();
  op->kind_ = Kind::kUnion;
  op->schema_ = left->schema();
  op->children_ = {std::move(left), std::move(right)};
  return op;
}

PlanPtr LogicalOp::Intersect(PlanPtr left, PlanPtr right) {
  RequireSameAttributeSet(left->schema(), right->schema(), "Intersect");
  auto op = New();
  op->kind_ = Kind::kIntersect;
  op->schema_ = left->schema();
  op->children_ = {std::move(left), std::move(right)};
  return op;
}

PlanPtr LogicalOp::Difference(PlanPtr left, PlanPtr right) {
  RequireSameAttributeSet(left->schema(), right->schema(), "Difference");
  auto op = New();
  op->kind_ = Kind::kDifference;
  op->schema_ = left->schema();
  op->children_ = {std::move(left), std::move(right)};
  return op;
}

PlanPtr LogicalOp::Product(PlanPtr left, PlanPtr right) {
  auto op = New();
  op->kind_ = Kind::kProduct;
  op->schema_ = left->schema().Concat(right->schema());
  op->children_ = {std::move(left), std::move(right)};
  return op;
}

PlanPtr LogicalOp::ThetaJoin(PlanPtr left, PlanPtr right, ExprPtr condition) {
  Schema combined = left->schema().Concat(right->schema());
  RequirePredicateColumns(condition, combined, "ThetaJoin");
  auto op = New();
  op->kind_ = Kind::kThetaJoin;
  op->schema_ = std::move(combined);
  op->children_ = {std::move(left), std::move(right)};
  op->predicate_ = std::move(condition);
  return op;
}

PlanPtr LogicalOp::NaturalJoin(PlanPtr left, PlanPtr right) {
  std::vector<std::string> right_only = right->schema().NamesMinus(left->schema());
  auto op = New();
  op->kind_ = Kind::kNaturalJoin;
  op->schema_ = left->schema().Concat(right->schema().Project(right_only));
  op->children_ = {std::move(left), std::move(right)};
  return op;
}

PlanPtr LogicalOp::SemiJoin(PlanPtr left, PlanPtr right) {
  auto op = New();
  op->kind_ = Kind::kSemiJoin;
  op->schema_ = left->schema();
  op->children_ = {std::move(left), std::move(right)};
  return op;
}

PlanPtr LogicalOp::AntiJoin(PlanPtr left, PlanPtr right) {
  auto op = New();
  op->kind_ = Kind::kAntiJoin;
  op->schema_ = left->schema();
  op->children_ = {std::move(left), std::move(right)};
  return op;
}

PlanPtr LogicalOp::Divide(PlanPtr dividend, PlanPtr divisor) {
  DivisionAttributes attrs =
      DivisionAttributeSets(dividend->schema(), divisor->schema(), /*allow_c=*/false);
  auto op = New();
  op->kind_ = Kind::kDivide;
  op->schema_ = dividend->schema().Project(attrs.a);
  op->children_ = {std::move(dividend), std::move(divisor)};
  return op;
}

PlanPtr LogicalOp::GreatDivide(PlanPtr dividend, PlanPtr divisor) {
  DivisionAttributes attrs =
      DivisionAttributeSets(dividend->schema(), divisor->schema(), /*allow_c=*/true);
  auto op = New();
  op->kind_ = Kind::kGreatDivide;
  op->schema_ =
      dividend->schema().Project(attrs.a).Concat(divisor->schema().Project(attrs.c));
  op->children_ = {std::move(dividend), std::move(divisor)};
  return op;
}

PlanPtr LogicalOp::GroupBy(PlanPtr child, std::vector<std::string> group_names,
                           std::vector<AggSpec> aggs) {
  auto op = New();
  op->kind_ = Kind::kGroupBy;
  op->schema_ = GroupByOutputSchema(child->schema(), group_names, aggs);
  op->children_ = {std::move(child)};
  op->group_names_ = std::move(group_names);
  op->aggs_ = std::move(aggs);
  return op;
}

PlanPtr LogicalOp::Rename(PlanPtr child,
                          std::vector<std::pair<std::string, std::string>> renames) {
  std::vector<Attribute> attributes = child->schema().attributes();
  for (const auto& [from, to] : renames) {
    attributes[child->schema().IndexOfOrThrow(from)].name = to;
  }
  auto op = New();
  op->kind_ = Kind::kRename;
  op->schema_ = Schema(std::move(attributes));
  op->children_ = {std::move(child)};
  op->renames_ = std::move(renames);
  return op;
}

DivisionAttributes LogicalOp::division_attributes() const {
  if (kind_ != Kind::kDivide && kind_ != Kind::kGreatDivide) {
    throw SchemaError("division_attributes() on a non-division node");
  }
  return DivisionAttributeSets(left()->schema(), right()->schema(),
                               /*allow_c=*/kind_ == Kind::kGreatDivide);
}

bool LogicalOp::Equals(const LogicalOp& other) const {
  if (kind_ != other.kind_) return false;
  if (children_.size() != other.children_.size()) return false;
  switch (kind_) {
    case Kind::kScan:
      if (table_ != other.table_) return false;
      break;
    case Kind::kValues:
      if (!(*values_ == *other.values_)) return false;
      break;
    case Kind::kSelect:
    case Kind::kThetaJoin:
      if (!predicate_->Equals(*other.predicate_)) return false;
      break;
    case Kind::kProject:
      if (columns_ != other.columns_) return false;
      break;
    case Kind::kRename:
      if (renames_ != other.renames_) return false;
      break;
    case Kind::kGroupBy:
      if (group_names_ != other.group_names_ || aggs_ != other.aggs_) return false;
      break;
    default: break;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

size_t LogicalOp::TreeSize() const {
  size_t n = 1;
  for (const PlanPtr& child : children_) n += child->TreeSize();
  return n;
}

PlanPtr LogicalOp::WithChildren(std::vector<PlanPtr> children) const {
  if (children.size() != children_.size()) {
    throw SchemaError("WithChildren: arity mismatch");
  }
  switch (kind_) {
    case Kind::kScan:
    case Kind::kValues: {
      // Leaves: nothing to rebuild.
      auto op = New();
      *op = *this;
      return op;
    }
    case Kind::kSelect: return Select(children[0], predicate_);
    case Kind::kProject: return Project(children[0], columns_);
    case Kind::kUnion: return Union(children[0], children[1]);
    case Kind::kIntersect: return Intersect(children[0], children[1]);
    case Kind::kDifference: return Difference(children[0], children[1]);
    case Kind::kProduct: return Product(children[0], children[1]);
    case Kind::kThetaJoin: return ThetaJoin(children[0], children[1], predicate_);
    case Kind::kNaturalJoin: return NaturalJoin(children[0], children[1]);
    case Kind::kSemiJoin: return SemiJoin(children[0], children[1]);
    case Kind::kAntiJoin: return AntiJoin(children[0], children[1]);
    case Kind::kDivide: return Divide(children[0], children[1]);
    case Kind::kGreatDivide: return GreatDivide(children[0], children[1]);
    case Kind::kGroupBy: return GroupBy(children[0], group_names_, aggs_);
    case Kind::kRename: return Rename(children[0], renames_);
  }
  throw SchemaError("WithChildren: bad kind");
}

void LogicalOp::Render(std::string* out, int indent) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(KindName(kind_));
  switch (kind_) {
    case Kind::kScan: *out += " " + table_; break;
    case Kind::kValues:
      *out += " " + table_ + " [" + std::to_string(values_->size()) + " tuples]";
      break;
    case Kind::kSelect:
    case Kind::kThetaJoin: *out += " " + predicate_->ToString(); break;
    case Kind::kProject: {
      *out += " [";
      for (size_t i = 0; i < columns_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += columns_[i];
      }
      *out += "]";
      break;
    }
    case Kind::kRename: {
      *out += " [";
      for (size_t i = 0; i < renames_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += renames_[i].first + "->" + renames_[i].second;
      }
      *out += "]";
      break;
    }
    case Kind::kGroupBy: {
      *out += " by [";
      for (size_t i = 0; i < group_names_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += group_names_[i];
      }
      *out += "]";
      break;
    }
    default: break;
  }
  *out += "  -> " + schema_.ToString() + "\n";
  for (const PlanPtr& child : children_) child->Render(out, indent + 1);
}

std::string LogicalOp::ToString() const {
  std::string out;
  Render(&out, 0);
  return out;
}

namespace {

void CountExprParams(const Expr& expr, size_t* count) {
  if (expr.kind() == Expr::Kind::kParam) ++*count;
  if (expr.left() != nullptr) CountExprParams(*expr.left(), count);
  if (expr.right() != nullptr) CountExprParams(*expr.right(), count);
}

}  // namespace

size_t CountPlanParameters(const PlanPtr& plan) {
  size_t count = 0;
  if (plan->predicate() != nullptr) CountExprParams(*plan->predicate(), &count);
  for (const PlanPtr& child : plan->children()) count += CountPlanParameters(child);
  return count;
}

PlanPtr BindPlanParameters(const PlanPtr& plan, const std::vector<Value>& params) {
  std::vector<PlanPtr> children;
  children.reserve(plan->children().size());
  bool changed = false;
  for (const PlanPtr& child : plan->children()) {
    children.push_back(BindPlanParameters(child, params));
    changed = changed || children.back() != child;
  }
  ExprPtr predicate = plan->predicate();
  if (predicate != nullptr) {
    ExprPtr bound = Expr::BindParams(predicate, params);
    changed = changed || bound != predicate;
    predicate = std::move(bound);
  }
  if (!changed) return plan;
  switch (plan->kind()) {
    case LogicalOp::Kind::kSelect: return LogicalOp::Select(children[0], predicate);
    case LogicalOp::Kind::kThetaJoin:
      return LogicalOp::ThetaJoin(children[0], children[1], predicate);
    default: return plan->WithChildren(std::move(children));
  }
}

void CollectScanTables(const PlanPtr& plan, std::set<std::string>* out) {
  if (plan->kind() == LogicalOp::Kind::kScan) out->insert(plan->table());
  for (const PlanPtr& child : plan->children()) CollectScanTables(child, out);
}

}  // namespace quotient
