#include "plan/evaluate.hpp"

#include "algebra/divide.hpp"
#include "algebra/ops.hpp"
#include "util/status.hpp"

namespace quotient {

namespace {

Relation EvaluateNode(const LogicalOp& op, const Catalog& catalog, EvalStats* stats) {
  auto eval_child = [&](size_t i) { return EvaluateNode(*op.child(i), catalog, stats); };

  Relation result;
  switch (op.kind()) {
    case LogicalOp::Kind::kScan: result = catalog.Get(op.table()); break;
    case LogicalOp::Kind::kValues: result = op.values(); break;
    case LogicalOp::Kind::kSelect: result = Select(eval_child(0), op.predicate()); break;
    case LogicalOp::Kind::kProject: result = Project(eval_child(0), op.columns()); break;
    case LogicalOp::Kind::kUnion: result = Union(eval_child(0), eval_child(1)); break;
    case LogicalOp::Kind::kIntersect: result = Intersect(eval_child(0), eval_child(1)); break;
    case LogicalOp::Kind::kDifference: result = Difference(eval_child(0), eval_child(1)); break;
    case LogicalOp::Kind::kProduct: result = Product(eval_child(0), eval_child(1)); break;
    case LogicalOp::Kind::kThetaJoin:
      result = ThetaJoin(eval_child(0), eval_child(1), op.predicate());
      break;
    case LogicalOp::Kind::kNaturalJoin: result = NaturalJoin(eval_child(0), eval_child(1)); break;
    case LogicalOp::Kind::kSemiJoin: result = SemiJoin(eval_child(0), eval_child(1)); break;
    case LogicalOp::Kind::kAntiJoin: result = AntiSemiJoin(eval_child(0), eval_child(1)); break;
    case LogicalOp::Kind::kDivide: result = Divide(eval_child(0), eval_child(1)); break;
    case LogicalOp::Kind::kGreatDivide: result = GreatDivide(eval_child(0), eval_child(1)); break;
    case LogicalOp::Kind::kGroupBy:
      result = GroupBy(eval_child(0), op.group_names(), op.aggs());
      break;
    case LogicalOp::Kind::kRename: result = Rename(eval_child(0), op.renames()); break;
  }
  if (stats != nullptr) {
    stats->nodes_evaluated += 1;
    stats->total_intermediate_tuples += result.size();
    stats->max_intermediate = std::max(stats->max_intermediate, result.size());
  }
  return result;
}

}  // namespace

Relation Evaluate(const PlanPtr& plan, const Catalog& catalog, EvalStats* stats) {
  return EvaluateNode(*plan, catalog, stats);
}

}  // namespace quotient
