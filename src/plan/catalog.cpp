#include "plan/catalog.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "algebra/ops.hpp"
#include "exec/query_context.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace quotient {

namespace {

std::vector<std::string> Sorted(std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

Catalog::Catalog(const Catalog& other) { *this = other; }

Catalog& Catalog::operator=(const Catalog& other) {
  if (this == &other) return *this;
  relations_ = other.relations_;
  data_versions_ = other.data_versions_;
  keys_ = other.keys_;
  foreign_keys_ = other.foreign_keys_;
  disjoint_ = other.disjoint_;
  std::scoped_lock lock(encodings_mutex_, other.encodings_mutex_);
  encodings_ = other.encodings_;
  return *this;
}

Catalog::Catalog(Catalog&& other) noexcept { *this = std::move(other); }

Catalog& Catalog::operator=(Catalog&& other) noexcept {
  if (this == &other) return *this;
  relations_ = std::move(other.relations_);
  data_versions_ = std::move(other.data_versions_);
  keys_ = std::move(other.keys_);
  foreign_keys_ = std::move(other.foreign_keys_);
  disjoint_ = std::move(other.disjoint_);
  std::scoped_lock lock(encodings_mutex_, other.encodings_mutex_);
  encodings_ = std::move(other.encodings_);
  return *this;
}

void Catalog::Put(const std::string& name, Relation relation) {
  Put(name, std::make_shared<const Relation>(std::move(relation)));
}

void Catalog::Put(const std::string& name, std::shared_ptr<const Relation> relation) {
  relations_.insert_or_assign(name, std::move(relation));
  ++data_versions_[name];
  std::lock_guard<std::mutex> lock(encodings_mutex_);
  encodings_.erase(name);  // replaced data invalidates the cached encoding
}

uint64_t Catalog::DataVersion(const std::string& name) const {
  auto it = data_versions_.find(name);
  return it != data_versions_.end() ? it->second : 0;
}

bool Catalog::Has(const std::string& name) const { return relations_.count(name) > 0; }

const Relation& Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) throw SchemaError("unknown relation '" + name + "'");
  return *it->second;
}

std::shared_ptr<const Relation> Catalog::GetShared(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) throw SchemaError("unknown relation '" + name + "'");
  return it->second;
}

TableEncodingPtr Catalog::Encoding(const std::string& name) const {
  const Relation& relation = Get(name);
  std::promise<TableEncodingPtr> promise;
  std::shared_future<TableEncodingPtr> future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(encodings_mutex_);
    auto it = encodings_.find(name);
    if (it == encodings_.end()) {
      it = encodings_.emplace(name, promise.get_future().share()).first;
      builder = true;
    }
    future = it->second;
  }
  if (builder) {
    // Build outside the mutex: concurrent queries over other tables are
    // not serialized, and threads racing on this table block on the future
    // below instead of duplicating the dictionary construction.
    try {
      // Governed only BEFORE the build starts: the future is shared with
      // other queries, so one query's cancellation must not poison it
      // mid-build (an injected fault here fails every sharer — acceptable,
      // since the cache entry is dropped and the next request retries).
      GovernorPoll();
      GovernorFaultPoint("catalog.encoding");
      GovernorCharge(relation.size() * relation.schema().size() * 8);
      promise.set_value(TableEncoding::Build(relation));
    } catch (...) {
      // Don't poison the cache with a failed build: drop the entry so the
      // next request retries, then deliver the error to current waiters.
      {
        std::lock_guard<std::mutex> lock(encodings_mutex_);
        encodings_.erase(name);
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

TableEncodingPtr Catalog::EncodingIfCached(const std::string& name) const {
  std::lock_guard<std::mutex> lock(encodings_mutex_);
  auto it = encodings_.find(name);
  if (it == encodings_.end()) return nullptr;
  if (it->second.wait_for(std::chrono::seconds(0)) != std::future_status::ready) return nullptr;
  // A failed build parks an exception in the future; treat it as absent.
  try {
    return it->second.get();
  } catch (...) {
    return nullptr;
  }
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, r] : relations_) names.push_back(name);
  return names;
}

std::string Catalog::KeyOf(const std::string& table, const std::vector<std::string>& attrs) {
  return table + "|" + Join(Sorted(attrs), ",");
}

void Catalog::DeclareKey(const std::string& table, const std::vector<std::string>& attrs) {
  keys_.insert(KeyOf(table, attrs));
}

bool Catalog::ImpliesKey(const std::string& table,
                         const std::vector<std::string>& attrs) const {
  // A declared key K makes any superset of K a key as well; checking all
  // subsets would be exponential, so check every declared key of `table`.
  std::string prefix = table + "|";
  for (const std::string& entry : keys_) {
    if (entry.compare(0, prefix.size(), prefix) != 0) continue;
    std::vector<std::string> declared = SplitTrim(entry.substr(prefix.size()), ',');
    bool subset = true;
    for (const std::string& k : declared) {
      if (std::find(attrs.begin(), attrs.end(), k) == attrs.end()) {
        subset = false;
        break;
      }
    }
    if (subset) return true;
  }
  return false;
}

void Catalog::DeclareForeignKey(const std::string& from_table,
                                const std::vector<std::string>& attrs,
                                const std::string& to_table) {
  foreign_keys_.insert(KeyOf(from_table, attrs) + "|" + to_table);
}

bool Catalog::HasForeignKey(const std::string& from_table,
                            const std::vector<std::string>& attrs,
                            const std::string& to_table) const {
  return foreign_keys_.count(KeyOf(from_table, attrs) + "|" + to_table) > 0;
}

void Catalog::DeclareDisjoint(const std::string& table1, const std::string& table2,
                              const std::vector<std::string>& attrs) {
  disjoint_.insert(KeyOf(table1, attrs) + "|" + table2);
  disjoint_.insert(KeyOf(table2, attrs) + "|" + table1);
}

bool Catalog::AreDisjoint(const std::string& table1, const std::string& table2,
                          const std::vector<std::string>& attrs) const {
  return disjoint_.count(KeyOf(table1, attrs) + "|" + table2) > 0;
}

bool Catalog::CheckKey(const Relation& r, const std::vector<std::string>& attrs) {
  Relation projected = Project(r, attrs);
  return projected.size() == r.size();
}

bool Catalog::CheckForeignKey(const Relation& from, const Relation& to,
                              const std::vector<std::string>& attrs) {
  return Project(from, attrs).SubsetOf(Project(to, attrs));
}

bool Catalog::CheckDisjoint(const Relation& r1, const Relation& r2,
                            const std::vector<std::string>& attrs) {
  return Intersect(Project(r1, attrs), Project(r2, attrs)).empty();
}

}  // namespace quotient
