#pragma once

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algebra/divide.hpp"
#include "algebra/ops.hpp"
#include "algebra/predicate.hpp"
#include "plan/catalog.hpp"

namespace quotient {

class LogicalOp;
using PlanPtr = std::shared_ptr<const LogicalOp>;

/// An immutable logical query plan node. Output schemas are inferred (and
/// validated) eagerly at construction, so a PlanPtr is always well-typed.
///
/// Divide and GreatDivide are first-class operators here — the paper's
/// point is that the optimizer must treat them as such rather than expanding
/// them into basic algebra (Section 1.1, [25]).
class LogicalOp {
 public:
  enum class Kind {
    kScan,         // base relation by name
    kValues,       // inline relation
    kSelect,       // σ
    kProject,      // π (duplicate-removing)
    kUnion,        // ∪
    kIntersect,    // ∩
    kDifference,   // −
    kProduct,      // ×
    kThetaJoin,    // ⋈θ
    kNaturalJoin,  // ⋈
    kSemiJoin,     // ⋉
    kAntiJoin,     // anti ⋉
    kDivide,       // ÷ (small divide)
    kGreatDivide,  // ÷* (generalized division)
    kGroupBy,      // GγF
    kRename        // ρ
  };

  static const char* KindName(Kind kind);

  // ---- Factories (each validates inputs and infers the output schema) ----
  static PlanPtr Scan(const Catalog& catalog, std::string table);
  static PlanPtr Values(Relation relation, std::string label = "values");
  static PlanPtr Select(PlanPtr child, ExprPtr predicate);
  static PlanPtr Project(PlanPtr child, std::vector<std::string> columns);
  static PlanPtr Union(PlanPtr left, PlanPtr right);
  static PlanPtr Intersect(PlanPtr left, PlanPtr right);
  static PlanPtr Difference(PlanPtr left, PlanPtr right);
  static PlanPtr Product(PlanPtr left, PlanPtr right);
  static PlanPtr ThetaJoin(PlanPtr left, PlanPtr right, ExprPtr condition);
  static PlanPtr NaturalJoin(PlanPtr left, PlanPtr right);
  static PlanPtr SemiJoin(PlanPtr left, PlanPtr right);
  static PlanPtr AntiJoin(PlanPtr left, PlanPtr right);
  static PlanPtr Divide(PlanPtr dividend, PlanPtr divisor);
  static PlanPtr GreatDivide(PlanPtr dividend, PlanPtr divisor);
  static PlanPtr GroupBy(PlanPtr child, std::vector<std::string> group_names,
                         std::vector<AggSpec> aggs);
  static PlanPtr Rename(PlanPtr child,
                        std::vector<std::pair<std::string, std::string>> renames);

  // ---- Accessors ----
  Kind kind() const { return kind_; }
  const Schema& schema() const { return schema_; }
  const std::vector<PlanPtr>& children() const { return children_; }
  const PlanPtr& child(size_t i) const { return children_[i]; }
  const PlanPtr& left() const { return children_[0]; }
  const PlanPtr& right() const { return children_[1]; }

  const std::string& table() const { return table_; }
  const Relation& values() const { return *values_; }
  const ExprPtr& predicate() const { return predicate_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::pair<std::string, std::string>>& renames() const { return renames_; }
  const std::vector<std::string>& group_names() const { return group_names_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

  /// For kDivide / kGreatDivide: the (A, B, C) attribute partition.
  DivisionAttributes division_attributes() const;

  /// Structural equality (same tree, same payloads).
  bool Equals(const LogicalOp& other) const;

  /// Multi-line indented rendering with per-node output schemas.
  std::string ToString() const;

  /// Number of nodes in this subtree.
  size_t TreeSize() const;

  /// Rebuilds this node on top of new children (payload preserved). Used by
  /// the rewrite engine. `children` must match the node's arity.
  PlanPtr WithChildren(std::vector<PlanPtr> children) const;

 private:
  LogicalOp() = default;
  static std::shared_ptr<LogicalOp> New() { return std::shared_ptr<LogicalOp>(new LogicalOp()); }
  void Render(std::string* out, int indent) const;

  Kind kind_ = Kind::kValues;
  Schema schema_;
  std::vector<PlanPtr> children_;

  std::string table_;                          // kScan (and label for kValues)
  std::shared_ptr<const Relation> values_;     // kValues
  ExprPtr predicate_;                          // kSelect, kThetaJoin
  std::vector<std::string> columns_;           // kProject
  std::vector<std::pair<std::string, std::string>> renames_;  // kRename
  std::vector<std::string> group_names_;       // kGroupBy
  std::vector<AggSpec> aggs_;                  // kGroupBy
};

// ---- prepared-statement parameter slots --------------------------------
// A parameterized statement lowers once into a plan whose predicates carry
// Expr::Kind::kParam placeholders; each execution substitutes the bound
// values into a path-copied plan (shared, already-validated subtrees are
// reused). This is what lets the plan cache hold ONE entry per prepared
// statement instead of one per distinct binding.

/// Number of '?' placeholder occurrences in the plan's predicates.
size_t CountPlanParameters(const PlanPtr& plan);

/// Substitutes every kParam placeholder by the matching value from
/// `params` (0-based ordinals). Returns `plan` itself when it carries no
/// parameters. Throws SchemaError on an out-of-range ordinal.
PlanPtr BindPlanParameters(const PlanPtr& plan, const std::vector<Value>& params);

/// Inserts the name of every base table the plan scans into `out` — the
/// invalidation domain of a cached plan (api/database.hpp).
void CollectScanTables(const PlanPtr& plan, std::set<std::string>* out);

}  // namespace quotient
