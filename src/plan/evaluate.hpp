#pragma once

#include <cstddef>

#include "plan/logical.hpp"

namespace quotient {

/// Tuple-count accounting for a plan evaluation. `max_intermediate` is the
/// largest single intermediate result; the Leinders/Van den Bussche result
/// cited in §6 predicts it grows quadratically for any basic-algebra
/// simulation of small divide but stays linear for the first-class operator.
struct EvalStats {
  size_t total_intermediate_tuples = 0;
  size_t max_intermediate = 0;
  size_t nodes_evaluated = 0;
};

/// Interprets `plan` against `catalog` using the reference algebra of
/// src/algebra. This is the semantics oracle: the rewrite engine and the
/// physical engine are both validated against it.
Relation Evaluate(const PlanPtr& plan, const Catalog& catalog, EvalStats* stats = nullptr);

}  // namespace quotient
