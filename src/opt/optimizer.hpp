#pragma once

#include "core/engine.hpp"
#include "opt/cost.hpp"
#include "opt/planner.hpp"

namespace quotient {

/// End-to-end optimizer configuration.
struct OptimizerOptions {
  PlannerOptions planner;
  /// Apply the default law-based rule set before lowering.
  bool use_rules = true;
  /// Permit rules to evaluate subplans for data-dependent preconditions
  /// (the expensive-c1 trade-off of §5.1.1).
  bool allow_runtime_checks = false;
  size_t max_rewrite_steps = 64;
};

/// What the optimizer did to a query, for EXPLAIN output.
struct OptimizationReport {
  PlanPtr original;
  PlanPtr chosen;
  double original_cost = 0;
  double chosen_cost = 0;
  std::vector<RewriteStep> steps;  // applied law rewrites, in order

  /// Human-readable summary: costs, applied laws, final plan.
  std::string Explain() const;
};

/// The optimizer: law-based rewriting (src/core) guarded by the cost model,
/// then lowering to the Volcano engine. If the rewritten plan estimates
/// worse than the original (the model is deliberately simple), the original
/// is kept — rewrites are never blindly trusted.
class Optimizer {
 public:
  explicit Optimizer(const Catalog& catalog, OptimizerOptions options = {});

  /// Rewrites and costs `plan` without executing it.
  OptimizationReport Optimize(const PlanPtr& plan) const;

  /// Optimizes, lowers, executes; fills `profile`/`report` when provided.
  Relation Run(const PlanPtr& plan, ExecProfile* profile = nullptr,
               OptimizationReport* report = nullptr) const;

 private:
  const Catalog& catalog_;
  OptimizerOptions options_;
  RewriteEngine engine_;
};

}  // namespace quotient
