#pragma once

#include "core/engine.hpp"
#include "opt/cost.hpp"
#include "opt/planner.hpp"
#include "opt/stats.hpp"

namespace quotient {

/// End-to-end optimizer configuration.
struct OptimizerOptions {
  PlannerOptions planner;
  /// Apply the law-based rule set before lowering.
  bool use_rules = true;
  /// Permit rules to evaluate subplans for data-dependent preconditions
  /// (the expensive-c1 trade-off of §5.1.1).
  bool allow_runtime_checks = false;
  size_t max_rewrite_steps = 64;
  /// Explore alternative law applications best-first under the cost model
  /// (opt/memo.hpp) instead of committing to the greedy fixpoint. Off
  /// restores the pre-search greedy behavior, kept for A/B comparison.
  bool search = true;
  /// Candidate-plan budget for the search (plans costed; memo hits free).
  size_t max_search_candidates = 256;
};

/// What the optimizer did to a query, for EXPLAIN output.
struct OptimizationReport {
  PlanPtr original;
  PlanPtr chosen;
  double original_cost = 0;
  double chosen_cost = 0;
  /// Cost of the greedy fixpoint plan — the search's A/B reference. Equals
  /// original_cost when no rule fired (or rules are off).
  double greedy_cost = 0;
  std::vector<RewriteStep> steps;  // applied law rewrites, in order
  /// Candidate plans costed by the search (0 when search is off).
  size_t search_candidates = 0;
  /// Duplicate states the memo pruned by fingerprint.
  size_t memo_hits = 0;
  /// A rewrite or search budget ran out before the space was exhausted.
  bool budget_exhausted = false;

  /// Human-readable summary: costs, search totals, applied laws with
  /// per-step cost deltas, final plan.
  std::string Explain() const;
};

/// The optimizer: law-based rewriting (src/core) driven by the cost model,
/// then lowering to the execution engine. With search on (the default) the
/// memoized best-first search picks the cheapest of every explored
/// alternative — never worse than the original OR the greedy fixpoint.
/// With search off, the greedy fixpoint's trace is kept only when the
/// model does not consider it a regression — rewrites are never blindly
/// trusted.
class Optimizer {
 public:
  /// `stats` feeds the cost model; pass the snapshot's cache
  /// (CatalogSnapshot::stats() in api/database.hpp) so harvests are shared
  /// across compiles. When null the optimizer owns a transient cache (used
  /// for transaction overlay catalogs, whose dirty contents have no
  /// published snapshot).
  explicit Optimizer(const Catalog& catalog, OptimizerOptions options = {},
                     const StatsCache* stats = nullptr);

  /// Rewrites and costs `plan` without executing it.
  OptimizationReport Optimize(const PlanPtr& plan) const;

  /// Optimizes, lowers, executes; fills `profile`/`report` when provided.
  Relation Run(const PlanPtr& plan, ExecProfile* profile = nullptr,
               OptimizationReport* report = nullptr) const;

 private:
  const StatsCache& stats() const { return stats_ != nullptr ? *stats_ : owned_stats_; }

  const Catalog& catalog_;
  OptimizerOptions options_;
  RewriteEngine engine_;         // greedy fixpoint: DefaultRuleSet()
  RewriteEngine search_engine_;  // search space: SearchRuleSet()
  const StatsCache* stats_;
  StatsCache owned_stats_;
};

}  // namespace quotient
