#include "opt/optimizer.hpp"

#include <cstdio>

namespace quotient {

std::string OptimizationReport::Explain() const {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line), "original cost: %.1f, chosen cost: %.1f\n", original_cost,
                chosen_cost);
  out += line;
  if (steps.empty()) {
    out += "no rewrites applied\n";
  } else {
    out += "applied rewrites:\n";
    for (const RewriteStep& step : steps) {
      out += "  - " + step.rule + "\n";
    }
  }
  out += "final plan:\n" + chosen->ToString();
  return out;
}

Optimizer::Optimizer(const Catalog& catalog, OptimizerOptions options)
    : catalog_(catalog), options_(std::move(options)), engine_(RewriteEngine::Default()) {}

OptimizationReport Optimizer::Optimize(const PlanPtr& plan) const {
  OptimizationReport report;
  report.original = plan;
  report.original_cost = EstimateCost(plan, catalog_);
  report.chosen = plan;
  report.chosen_cost = report.original_cost;

  if (options_.use_rules) {
    RewriteContext context{&catalog_, options_.allow_runtime_checks};
    std::vector<RewriteStep> steps;
    PlanPtr rewritten = engine_.Rewrite(plan, context, &steps, options_.max_rewrite_steps);
    if (!steps.empty()) {
      double rewritten_cost = EstimateCost(rewritten, catalog_);
      // Keep the rewrite only if the model does not consider it a
      // regression; the default rule set is curated, so ties go to the
      // rewritten plan.
      if (rewritten_cost <= report.original_cost * 1.05) {
        report.chosen = rewritten;
        report.chosen_cost = rewritten_cost;
        report.steps = std::move(steps);
      }
    }
  }
  return report;
}

Relation Optimizer::Run(const PlanPtr& plan, ExecProfile* profile,
                        OptimizationReport* report) const {
  OptimizationReport local = Optimize(plan);
  Relation result = ExecutePlan(local.chosen, catalog_, options_.planner, profile);
  if (report != nullptr) *report = std::move(local);
  return result;
}

}  // namespace quotient
