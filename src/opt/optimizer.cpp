#include "opt/optimizer.hpp"

#include <cstdio>
#include <utility>

#include "opt/memo.hpp"

namespace quotient {

namespace {

/// "%.1f" of a double into a std::string, sized exactly — no fixed buffer
/// to overflow (large estimates print all their digits).
std::string FormatCost(double cost) {
  int needed = std::snprintf(nullptr, 0, "%.1f", cost);
  if (needed < 0) return "?";
  std::string out(static_cast<size_t>(needed) + 1, '\0');
  std::snprintf(out.data(), out.size(), "%.1f", cost);
  out.resize(static_cast<size_t>(needed));
  return out;
}

}  // namespace

std::string OptimizationReport::Explain() const {
  std::string out;
  out += "original cost: " + FormatCost(original_cost) +
         ", greedy cost: " + FormatCost(greedy_cost) +
         ", chosen cost: " + FormatCost(chosen_cost) + "\n";
  if (search_candidates > 0) {
    out += "search: " + std::to_string(search_candidates) + " candidates, " +
           std::to_string(memo_hits) + " memo hits";
    if (budget_exhausted) out += " (budget exhausted)";
    out += "\n";
  } else {
    out += "search: off (greedy fixpoint)";
    if (budget_exhausted) out += " (budget exhausted)";
    out += "\n";
  }
  if (steps.empty()) {
    out += "no rewrites applied\n";
  } else {
    out += "applied rewrites:\n";
    double running = original_cost;
    for (const RewriteStep& step : steps) {
      out += "  - " + step.rule;
      if (step.cost_after > 0 || step.rule != kRewriteBudgetExhausted) {
        out += " (cost " + FormatCost(running) + " -> " + FormatCost(step.cost_after) + ")";
        running = step.cost_after;
      }
      out += "\n";
    }
  }
  out += "final plan:\n" + chosen->ToString();
  return out;
}

Optimizer::Optimizer(const Catalog& catalog, OptimizerOptions options, const StatsCache* stats)
    : catalog_(catalog),
      options_(std::move(options)),
      engine_(RewriteEngine::Default()),
      search_engine_(RewriteEngine(SearchRuleSet())),
      stats_(stats) {}

OptimizationReport Optimizer::Optimize(const PlanPtr& plan) const {
  OptimizationReport report;
  report.original = plan;
  report.original_cost = EstimateCost(plan, catalog_, stats());
  report.chosen = plan;
  report.chosen_cost = report.original_cost;
  report.greedy_cost = report.original_cost;
  if (!options_.use_rules) return report;

  RewriteContext context{&catalog_, options_.allow_runtime_checks};

  // The greedy fixpoint: the pre-search behavior and the search's A/B
  // reference. Driven step-by-step here (instead of engine_.Rewrite) so
  // every step records the whole-plan cost after it applied.
  std::vector<RewriteStep> greedy_steps;
  bool greedy_budget_exhausted = false;
  PlanPtr greedy = plan;
  for (size_t i = 0;; ++i) {
    RewriteStep step;
    PlanPtr next = engine_.RewriteOnce(greedy, context, &step);
    if (next == nullptr) break;  // converged
    if (i >= options_.max_rewrite_steps) {
      greedy_budget_exhausted = true;
      greedy_steps.push_back({kRewriteBudgetExhausted, "", "", 0});
      break;
    }
    step.cost_after = EstimateCost(next, catalog_, stats());
    greedy = std::move(next);
    greedy_steps.push_back(std::move(step));
  }
  double greedy_cost = greedy_steps.empty() ? report.original_cost
                                            : EstimateCost(greedy, catalog_, stats());
  report.greedy_cost = greedy_cost;

  if (!options_.search) {
    // A/B mode — the historical all-or-nothing gate: keep the entire
    // greedy trace only if the model does not consider it a regression
    // (the rule set is curated, so ties go to the rewritten plan).
    report.budget_exhausted = greedy_budget_exhausted;
    if (!greedy_steps.empty() && greedy_cost <= report.original_cost * 1.05) {
      report.chosen = greedy;
      report.chosen_cost = greedy_cost;
      report.steps = std::move(greedy_steps);
    }
    return report;
  }

  MemoSearchOptions memo_options;
  memo_options.max_steps = options_.max_rewrite_steps;
  memo_options.max_candidates = options_.max_search_candidates;
  MemoSearchResult searched =
      MemoSearch(plan, search_engine_, context, catalog_, stats(), memo_options);
  report.search_candidates = searched.candidates;
  report.memo_hits = searched.memo_hits;
  report.budget_exhausted = searched.budget_exhausted || greedy_budget_exhausted;

  // Chosen = argmin over {original, greedy fixpoint, search best}. The
  // searched best is never worse than the original by construction;
  // comparing the greedy plan too keeps the guarantee "search is never
  // worse than greedy" even when the candidate budget stopped exploration
  // short of the greedy fixpoint's path.
  report.chosen = searched.best;
  report.chosen_cost = searched.best_cost;
  report.steps = std::move(searched.steps);
  if (!greedy_steps.empty() && greedy_cost < report.chosen_cost) {
    report.chosen = greedy;
    report.chosen_cost = greedy_cost;
    report.steps = std::move(greedy_steps);
  }
  return report;
}

Relation Optimizer::Run(const PlanPtr& plan, ExecProfile* profile,
                        OptimizationReport* report) const {
  OptimizationReport local = Optimize(plan);
  Relation result = ExecutePlan(local.chosen, catalog_, options_.planner, profile,
                                /*context=*/nullptr, &stats());
  if (profile != nullptr) {
    profile->search_candidates = local.search_candidates;
    profile->memo_hits = local.memo_hits;
  }
  if (report != nullptr) *report = std::move(local);
  return result;
}

}  // namespace quotient
