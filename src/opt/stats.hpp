#pragma once

// Per-table statistics feeding the cost model (opt/cost.hpp).
//
// TableStats carries exactly what the estimation rules consume: the row
// count and the per-column distinct-value counts. Distinct counts are the
// sizes of the per-column dictionaries — when the catalog's cached
// TableEncoding is already built (the steady state for any table that has
// been scanned in batch/parallel mode) they are read straight off the
// dictionary, and otherwise they are computed by a direct scan of the
// stored relation. Both paths yield identical numbers, so plan choice
// never depends on cache temperature.
//
// The harvest deliberately never calls Catalog::Encoding(): that would
// trigger a governed dictionary build at compile time — charging build
// memory outside any query's governor, consuming the catalog.encoding
// fault site before execution reaches it, and warming a cache the
// execution-time tests expect to warm themselves.
//
// A StatsCache lives on each CatalogSnapshot (api/database.hpp), so stats
// version with the data: DDL or a committed transaction publishes a new
// snapshot with a fresh, empty cache, and compiles against older pinned
// snapshots keep seeing the statistics of the data they actually read.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "plan/catalog.hpp"

namespace quotient {

/// Statistics of one base table, harvested once per (cache, table).
struct TableStats {
  size_t rows = 0;
  /// Distinct-value count per column, parallel to the schema's attribute
  /// order. Always >= 1 when rows > 0.
  std::vector<size_t> distinct;
  /// Attribute names, parallel to `distinct` (schema order).
  std::vector<std::string> columns;

  /// Distinct count of `column`, or 0 when the column is absent.
  size_t DistinctOf(const std::string& column) const;
};

using TableStatsPtr = std::shared_ptr<const TableStats>;

/// Computes TableStats for `relation`, preferring the pre-built dictionary
/// sizes in `encoding` (pass nullptr to force the direct scan).
TableStats HarvestTableStats(const Relation& relation, const TableEncoding* encoding);

/// Thread-safe lazy per-table statistics cache. One instance hangs off each
/// CatalogSnapshot; the Optimizer owns a transient one when compiling
/// against a non-snapshot catalog (a transaction's dirty overlay).
class StatsCache {
 public:
  /// Stats for `table` in `catalog`, harvesting on first request. Returns
  /// nullptr for unknown tables. Thread-safe; the harvest runs outside the
  /// cache mutex, so concurrent misses on different tables do not serialize
  /// (racing misses on one table may both harvest; last write wins and both
  /// results are identical).
  TableStatsPtr Get(const Catalog& catalog, const std::string& table) const;

 private:
  mutable std::mutex mutex_;
  mutable std::map<std::string, TableStatsPtr> cache_;
};

}  // namespace quotient
