#include "opt/stats.hpp"

#include <unordered_set>

#include "algebra/value.hpp"

namespace quotient {

size_t TableStats::DistinctOf(const std::string& column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == column) return distinct[i];
  }
  return 0;
}

TableStats HarvestTableStats(const Relation& relation, const TableEncoding* encoding) {
  TableStats stats;
  stats.rows = relation.size();
  stats.columns = relation.schema().Names();
  stats.distinct.resize(stats.columns.size(), 0);
  if (encoding != nullptr && encoding->columns.size() == stats.columns.size()) {
    for (size_t c = 0; c < encoding->columns.size(); ++c) {
      stats.distinct[c] = encoding->columns[c].dict.size();
    }
    return stats;
  }
  for (size_t c = 0; c < stats.columns.size(); ++c) {
    std::unordered_set<Value, ValueHash> seen;
    for (const Tuple& tuple : relation.tuples()) seen.insert(tuple[c]);
    stats.distinct[c] = seen.size();
  }
  return stats;
}

TableStatsPtr StatsCache::Get(const Catalog& catalog, const std::string& table) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(table);
    if (it != cache_.end()) return it->second;
  }
  if (!catalog.Has(table)) return nullptr;
  // Harvest outside the mutex; EncodingIfCached never triggers a build.
  TableEncodingPtr encoding = catalog.EncodingIfCached(table);
  auto stats = std::make_shared<const TableStats>(
      HarvestTableStats(catalog.Get(table), encoding.get()));
  std::lock_guard<std::mutex> lock(mutex_);
  cache_[table] = stats;
  return stats;
}

}  // namespace quotient
