#include "opt/fingerprint.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

namespace quotient {

void FingerprintValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull: *out += 'n'; return;
    case ValueType::kInt:
      *out += 'i';
      *out += std::to_string(v.as_int());
      return;
    case ValueType::kReal: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "r%.17g", v.as_real());
      *out += buf;
      return;
    }
    case ValueType::kString:
      *out += 's';
      *out += std::to_string(v.as_str().size());
      *out += ':';
      *out += v.as_str();
      return;
    case ValueType::kSet: {
      *out += "{";
      for (const Value& e : v.as_set()) {
        FingerprintValue(e, out);
        *out += ',';
      }
      *out += '}';
      return;
    }
  }
  *out += '?';
}

bool FingerprintExpr(const ExprPtr& e, std::string* out) {
  if (e == nullptr) {
    *out += '_';
    return true;
  }
  switch (e->kind()) {
    case Expr::Kind::kColumn:
      *out += 'c';
      *out += std::to_string(e->column_name().size());
      *out += ':';
      *out += e->column_name();
      return true;
    case Expr::Kind::kLiteral:
      FingerprintValue(e->literal(), out);
      return true;
    case Expr::Kind::kParam: return false;
    case Expr::Kind::kCompare:
      *out += '(';
      if (!FingerprintExpr(e->left(), out)) return false;
      *out += CmpOpName(e->cmp_op());
      if (!FingerprintExpr(e->right(), out)) return false;
      *out += ')';
      return true;
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
    case Expr::Kind::kNot:
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
    case Expr::Kind::kMul:
    case Expr::Kind::kDiv: {
      *out += '(';
      *out += std::to_string(static_cast<int>(e->kind()));
      *out += ':';
      if (!FingerprintExpr(e->left(), out)) return false;
      if (e->right() != nullptr) {
        *out += ',';
        if (!FingerprintExpr(e->right(), out)) return false;
      }
      *out += ')';
      return true;
    }
  }
  return false;
}

void FingerprintNames(const std::vector<std::string>& names, std::string* out) {
  for (const std::string& name : names) {
    *out += std::to_string(name.size());
    *out += ':';
    *out += name;
    *out += ',';
  }
}

bool FingerprintPlan(const PlanPtr& plan, std::string* out) {
  const LogicalOp& op = *plan;
  switch (op.kind()) {
    case LogicalOp::Kind::kScan:
      *out += "scan[";
      *out += op.table();
      *out += ']';
      return true;
    case LogicalOp::Kind::kValues: return false;
    default: break;
  }
  *out += std::to_string(static_cast<int>(op.kind()));
  *out += '[';
  if (op.predicate() != nullptr && !FingerprintExpr(op.predicate(), out)) return false;
  switch (op.kind()) {
    case LogicalOp::Kind::kProject: FingerprintNames(op.columns(), out); break;
    case LogicalOp::Kind::kRename:
      for (const auto& [from, to] : op.renames()) {
        FingerprintNames({from, to}, out);
        *out += ';';
      }
      break;
    case LogicalOp::Kind::kGroupBy:
      FingerprintNames(op.group_names(), out);
      *out += '/';
      for (const AggSpec& agg : op.aggs()) {
        *out += std::to_string(static_cast<int>(agg.fn));
        *out += ':';
        FingerprintNames({agg.arg, agg.out}, out);
        *out += ';';
      }
      break;
    default: break;
  }
  for (const PlanPtr& child : op.children()) {
    *out += '(';
    if (!FingerprintPlan(child, out)) return false;
    *out += ')';
  }
  *out += ']';
  return true;
}

std::string VersionedFingerprint(const PlanPtr& plan, const Catalog& catalog,
                                 std::vector<std::string>* tables) {
  std::string fp;
  if (!FingerprintPlan(plan, &fp)) return "";
  std::set<std::string> scans;
  CollectScanTables(plan, &scans);
  for (const std::string& t : scans) {
    fp += '|';
    fp += t;
    fp += '=';
    fp += std::to_string(catalog.DataVersion(t));
    if (std::find(tables->begin(), tables->end(), t) == tables->end()) tables->push_back(t);
  }
  return fp;
}

}  // namespace quotient
