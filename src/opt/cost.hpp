#pragma once

#include "plan/logical.hpp"

namespace quotient {

/// Cardinality and cost estimates for logical plans. The model is the
/// classic textbook one: base cardinalities come from the catalog,
/// selections apply a default selectivity per conjunct, joins divide by the
/// larger distinct count, and divisions estimate |A-groups| scaled by a
/// containment probability. Costs count tuples touched (CPU-bound,
/// in-memory engine), with the division operators priced per their
/// algorithm family.
struct Estimate {
  double cardinality = 0;  // output rows
  double cost = 0;         // cumulative work, in touched-tuple units
};

/// Estimates `plan` bottom-up against `catalog`.
Estimate EstimatePlan(const PlanPtr& plan, const Catalog& catalog);

/// Convenience: just the cost.
double EstimateCost(const PlanPtr& plan, const Catalog& catalog);

}  // namespace quotient
