#pragma once

#include "opt/stats.hpp"
#include "plan/logical.hpp"

namespace quotient {

/// Cardinality and cost estimates for logical plans. The model is the
/// classic textbook one, fed by harvested statistics (opt/stats.hpp):
/// base cardinalities are table row counts, equality selectivities are
/// 1/distinct(column), joins divide by the distinct count of the shared
/// key, semi/anti joins compare the two sides' key domains, and divisions
/// estimate |A-groups| from the dividend's A-distinct count scaled by a
/// per-divisor-value containment probability. Costs count tuples touched
/// (CPU-bound, in-memory engine), with the division operators priced per
/// their algorithm family.
struct Estimate {
  double cardinality = 0;  // output rows
  double cost = 0;         // cumulative work, in touched-tuple units
};

/// Estimates `plan` bottom-up against `catalog`, reading per-table
/// statistics through `stats` (shared across estimates of rewrite
/// candidates over one snapshot; see CatalogSnapshot in api/database.hpp).
Estimate EstimatePlan(const PlanPtr& plan, const Catalog& catalog, const StatsCache& stats);

/// Convenience overload owning a transient StatsCache. Same numbers — the
/// cache only memoizes the harvest.
Estimate EstimatePlan(const PlanPtr& plan, const Catalog& catalog);

/// Convenience: just the cost.
double EstimateCost(const PlanPtr& plan, const Catalog& catalog, const StatsCache& stats);
double EstimateCost(const PlanPtr& plan, const Catalog& catalog);

}  // namespace quotient
