#include "opt/cost.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace quotient {

namespace {

// Fallbacks for shapes the statistics cannot resolve (computed columns,
// VALUES leaves, non-equality predicates).
constexpr double kDefaultSelectivity = 0.33;    // per predicate conjunct
constexpr double kDefaultContainment = 0.1;     // P(group ⊇ divisor)
constexpr double kDefaultGroupFraction = 0.25;  // |groups| / |input|

/// Bottom-up estimate of one node: output cardinality, cumulative cost,
/// and the estimated distinct-value count of every visible column (the
/// statistic selections, joins, and divisions condition on).
struct NodeEst {
  double card = 0;
  double cost = 0;
  std::map<std::string, double> distinct;
};

double DistinctOr(const NodeEst& e, const std::string& column, double fallback) {
  auto it = e.distinct.find(column);
  return it == e.distinct.end() ? fallback : std::max(1.0, it->second);
}

/// Caps every distinct estimate at the node's cardinality (a column cannot
/// have more distinct values than the relation has rows).
void CapDistinct(NodeEst* e) {
  double cap = std::max(1.0, e->card);
  for (auto& [name, d] : e->distinct) d = std::min(d, cap);
}

/// Product of the distinct counts of `columns`, clamped to [1, cap] — the
/// textbook upper bound on the number of distinct composite keys. Columns
/// without statistics contribute the cap (no reduction claimed).
double CompositeDistinct(const NodeEst& e, const std::vector<std::string>& columns,
                         double cap) {
  cap = std::max(1.0, cap);
  if (columns.empty()) return 1.0;
  double product = 1.0;
  for (const std::string& column : columns) {
    product *= DistinctOr(e, column, cap);
    if (product >= cap) return cap;
  }
  return std::max(1.0, product);
}

/// Selectivity of one conjunct against the input's column statistics.
/// Equality against a literal keeps ~1/distinct of the rows (never more
/// than half, so selection always narrows); inequality keeps the
/// complement; everything else falls back to the default. When the
/// conjunct pins a column to a literal, its name is appended to `pinned`
/// so the caller can collapse that column's distinct count to 1.
double ConjunctSelectivity(const ExprPtr& conjunct, const NodeEst& in,
                           std::vector<std::string>* pinned) {
  if (conjunct == nullptr || conjunct->kind() != Expr::Kind::kCompare) {
    return kDefaultSelectivity;
  }
  const ExprPtr& l = conjunct->left();
  const ExprPtr& r = conjunct->right();
  const bool l_col = l != nullptr && l->kind() == Expr::Kind::kColumn;
  const bool r_col = r != nullptr && r->kind() == Expr::Kind::kColumn;
  switch (conjunct->cmp_op()) {
    case CmpOp::kEq: {
      if (l_col && r_col) {
        double dl = DistinctOr(in, l->column_name(), 3.0);
        double dr = DistinctOr(in, r->column_name(), 3.0);
        return 1.0 / std::max(2.0, std::max(dl, dr));
      }
      const ExprPtr& col = l_col ? l : r;
      if (!l_col && !r_col) return kDefaultSelectivity;
      double d = DistinctOr(in, col->column_name(), 3.0);
      if (pinned != nullptr) pinned->push_back(col->column_name());
      return std::min(0.5, 1.0 / d);
    }
    case CmpOp::kNe: {
      if (l_col == r_col) return kDefaultSelectivity;  // both or neither
      const ExprPtr& col = l_col ? l : r;
      double d = DistinctOr(in, col->column_name(), 3.0);
      return d > 1.0 ? (d - 1.0) / d : 0.5;
    }
    default: return kDefaultSelectivity;
  }
}

NodeEst Estimate_(const PlanPtr& plan, const Catalog& catalog, const StatsCache& stats) {
  const LogicalOp& op = *plan;
  auto child = [&](size_t i) { return Estimate_(op.child(i), catalog, stats); };

  switch (op.kind()) {
    case LogicalOp::Kind::kScan: {
      NodeEst out;
      TableStatsPtr table = stats.Get(catalog, op.table());
      if (table != nullptr) {
        out.card = static_cast<double>(table->rows);
        for (size_t c = 0; c < table->columns.size(); ++c) {
          out.distinct[table->columns[c]] = static_cast<double>(table->distinct[c]);
        }
      } else {
        out.card = static_cast<double>(catalog.Get(op.table()).size());
      }
      out.cost = out.card;
      return out;
    }
    case LogicalOp::Kind::kValues: {
      NodeEst out;
      out.card = static_cast<double>(op.values().size());
      out.cost = out.card;
      // Inline rows are sets, so every column has at most `card` distinct
      // values; claim nothing stronger.
      for (const std::string& name : plan->schema().Names()) out.distinct[name] = out.card;
      return out;
    }
    case LogicalOp::Kind::kSelect: {
      NodeEst in = child(0);
      std::vector<ExprPtr> conjuncts;
      Expr::SplitConjuncts(op.predicate(), &conjuncts);
      double selectivity = 1.0;
      std::vector<std::string> pinned;
      for (const ExprPtr& conjunct : conjuncts) {
        selectivity *= ConjunctSelectivity(conjunct, in, &pinned);
      }
      NodeEst out = in;
      out.card = in.card * selectivity;
      // Predicate evaluation is cheap relative to materializing operators.
      out.cost = in.cost + 0.1 * in.card;
      for (const std::string& column : pinned) out.distinct[column] = 1.0;
      CapDistinct(&out);
      return out;
    }
    case LogicalOp::Kind::kProject: {
      NodeEst in = child(0);
      NodeEst out;
      // Set semantics: projection deduplicates, so the output is bounded by
      // the number of distinct composite keys over the kept columns.
      out.card = in.card == 0 ? 0 : std::min(in.card, CompositeDistinct(in, op.columns(), in.card));
      out.cost = in.cost + in.card;
      for (const std::string& column : op.columns()) {
        auto it = in.distinct.find(column);
        if (it != in.distinct.end()) out.distinct[column] = it->second;
      }
      CapDistinct(&out);
      return out;
    }
    case LogicalOp::Kind::kRename: {
      NodeEst in = child(0);
      NodeEst out;
      out.card = in.card;
      out.cost = in.cost;
      out.distinct = in.distinct;
      for (const auto& [from, to] : op.renames()) {
        auto it = out.distinct.find(from);
        if (it == out.distinct.end()) continue;
        double d = it->second;
        out.distinct.erase(it);
        out.distinct[to] = d;
      }
      return out;
    }
    case LogicalOp::Kind::kUnion: {
      NodeEst l = child(0), r = child(1);
      NodeEst out;
      out.card = l.card + r.card;
      out.cost = l.cost + r.cost + l.card + r.card;
      for (const auto& [name, d] : l.distinct) {
        out.distinct[name] = d + DistinctOr(r, name, 0.0);
      }
      CapDistinct(&out);
      return out;
    }
    case LogicalOp::Kind::kIntersect: {
      NodeEst l = child(0), r = child(1);
      NodeEst out;
      out.card = std::min(l.card, r.card) * 0.5;
      out.cost = l.cost + r.cost + l.card + r.card;
      for (const auto& [name, d] : l.distinct) {
        out.distinct[name] = std::min(d, DistinctOr(r, name, d));
      }
      CapDistinct(&out);
      return out;
    }
    case LogicalOp::Kind::kDifference: {
      NodeEst l = child(0), r = child(1);
      NodeEst out;
      out.card = l.card * 0.5;
      out.cost = l.cost + r.cost + l.card + r.card;
      out.distinct = l.distinct;
      CapDistinct(&out);
      return out;
    }
    case LogicalOp::Kind::kProduct: {
      NodeEst l = child(0), r = child(1);
      NodeEst out;
      out.card = l.card * r.card;
      out.cost = l.cost + r.cost + out.card;
      out.distinct = l.distinct;
      out.distinct.insert(r.distinct.begin(), r.distinct.end());
      CapDistinct(&out);
      return out;
    }
    case LogicalOp::Kind::kThetaJoin: {
      NodeEst l = child(0), r = child(1);
      NodeEst merged;  // both sides visible to the predicate
      merged.card = std::max(l.card, r.card);
      merged.distinct = l.distinct;
      merged.distinct.insert(r.distinct.begin(), r.distinct.end());
      std::vector<ExprPtr> conjuncts;
      Expr::SplitConjuncts(op.predicate(), &conjuncts);
      double selectivity = 1.0;
      for (const ExprPtr& conjunct : conjuncts) {
        selectivity *= ConjunctSelectivity(conjunct, merged, nullptr);
      }
      NodeEst out;
      out.card = l.card * r.card * selectivity;
      // Hash equi-joins touch each input once; conservative middle ground.
      out.cost = l.cost + r.cost + l.card + r.card + out.card;
      out.distinct = merged.distinct;
      CapDistinct(&out);
      return out;
    }
    case LogicalOp::Kind::kNaturalJoin: {
      NodeEst l = child(0), r = child(1);
      // Classic formula: |L ⋈ R| = |L|·|R| / max distinct of the shared key.
      double denominator = 1.0;
      bool resolved = false;
      for (const Attribute& attr : op.child(0)->schema().attributes()) {
        if (!op.child(1)->schema().Contains(attr.name)) continue;
        auto lit = l.distinct.find(attr.name);
        auto rit = r.distinct.find(attr.name);
        if (lit == l.distinct.end() || rit == r.distinct.end()) continue;
        denominator = std::max(denominator, std::max(lit->second, rit->second));
        resolved = true;
      }
      if (!resolved) denominator = std::max(1.0, std::max(l.card, r.card));
      NodeEst out;
      out.card = l.card * r.card / denominator;
      out.cost = l.cost + r.cost + l.card + r.card + out.card;
      out.distinct = l.distinct;
      out.distinct.insert(r.distinct.begin(), r.distinct.end());
      CapDistinct(&out);
      return out;
    }
    case LogicalOp::Kind::kSemiJoin:
    case LogicalOp::Kind::kAntiJoin: {
      NodeEst l = child(0), r = child(1);
      // Fraction of left rows whose shared key appears on the right: the
      // most selective shared column bounds it by min(1, d_r / d_l).
      double match = 0.5;
      bool seen_shared = false;
      for (const Attribute& attr : op.child(0)->schema().attributes()) {
        if (!op.child(1)->schema().Contains(attr.name)) continue;
        auto lit = l.distinct.find(attr.name);
        auto rit = r.distinct.find(attr.name);
        if (lit == l.distinct.end() || rit == r.distinct.end()) continue;
        double fraction =
            std::min(1.0, std::max(1.0, rit->second) / std::max(1.0, lit->second));
        match = seen_shared ? std::min(match, fraction) : fraction;
        seen_shared = true;
      }
      double keep = op.kind() == LogicalOp::Kind::kSemiJoin ? match : 1.0 - match;
      NodeEst out;
      out.card = l.card * std::max(0.0, keep);
      out.cost = l.cost + r.cost + l.card + r.card;
      out.distinct = l.distinct;
      CapDistinct(&out);
      return out;
    }
    case LogicalOp::Kind::kDivide: {
      NodeEst l = child(0), r = child(1);
      DivisionAttributes attrs = op.division_attributes();
      // Quotient candidates = distinct A-keys of the dividend. A group of
      // average size |dividend| / groups covers that fraction of the
      // dividend's B-domain; containing all m divisor values then has
      // probability ≈ coverage^m.
      double groups = l.distinct.empty() ? std::max(1.0, l.card * kDefaultGroupFraction)
                                         : CompositeDistinct(l, attrs.a, l.card);
      double containment = kDefaultContainment;
      if (!l.distinct.empty()) {
        double b_domain = CompositeDistinct(l, attrs.b, l.card);
        double group_size = l.card / std::max(1.0, groups);
        double coverage = std::min(1.0, group_size / std::max(1.0, b_domain));
        containment = std::pow(coverage, std::max(1.0, r.card));
      }
      // Every dividend and divisor tuple is touched once (hash division),
      // plus per-candidate bitmap work proportional to the divisor size.
      double bitmap_work = groups * std::max(1.0, r.card) / 8.0;
      NodeEst out;
      out.card = groups * containment;
      out.cost = l.cost + r.cost + l.card + r.card + bitmap_work;
      for (const std::string& column : attrs.a) {
        out.distinct[column] = DistinctOr(l, column, groups);
      }
      CapDistinct(&out);
      return out;
    }
    case LogicalOp::Kind::kGreatDivide: {
      NodeEst l = child(0), r = child(1);
      DivisionAttributes attrs = op.division_attributes();
      double groups = l.distinct.empty() ? std::max(1.0, l.card * kDefaultGroupFraction)
                                         : CompositeDistinct(l, attrs.a, l.card);
      double divisor_groups = r.distinct.empty()
                                  ? std::max(1.0, r.card * kDefaultGroupFraction)
                                  : CompositeDistinct(r, attrs.c, r.card);
      double containment = kDefaultContainment;
      if (!l.distinct.empty() && !r.distinct.empty()) {
        double b_domain = CompositeDistinct(l, attrs.b, l.card);
        double group_size = l.card / std::max(1.0, groups);
        double divisor_group_size = r.card / std::max(1.0, divisor_groups);
        double coverage = std::min(1.0, group_size / std::max(1.0, b_domain));
        containment = std::pow(coverage, std::max(1.0, divisor_group_size));
      }
      double counter_work = groups * divisor_groups / 8.0;
      NodeEst out;
      out.card = groups * divisor_groups * containment;
      out.cost = l.cost + r.cost + l.card + r.card + counter_work;
      for (const std::string& column : attrs.a) {
        out.distinct[column] = DistinctOr(l, column, groups);
      }
      for (const std::string& column : attrs.c) {
        out.distinct[column] = DistinctOr(r, column, divisor_groups);
      }
      CapDistinct(&out);
      return out;
    }
    case LogicalOp::Kind::kGroupBy: {
      NodeEst in = child(0);
      NodeEst out;
      if (op.group_names().empty()) {
        out.card = 1.0;  // global aggregate
      } else if (in.card == 0) {
        out.card = 0;
      } else {
        out.card = std::min(in.card, CompositeDistinct(in, op.group_names(), in.card));
      }
      out.cost = in.cost + in.card;
      for (const std::string& column : op.group_names()) {
        auto it = in.distinct.find(column);
        if (it != in.distinct.end()) out.distinct[column] = it->second;
      }
      CapDistinct(&out);
      return out;
    }
  }
  return {};
}

}  // namespace

Estimate EstimatePlan(const PlanPtr& plan, const Catalog& catalog, const StatsCache& stats) {
  NodeEst est = Estimate_(plan, catalog, stats);
  return {est.card, est.cost};
}

Estimate EstimatePlan(const PlanPtr& plan, const Catalog& catalog) {
  StatsCache transient;
  return EstimatePlan(plan, catalog, transient);
}

double EstimateCost(const PlanPtr& plan, const Catalog& catalog, const StatsCache& stats) {
  return EstimatePlan(plan, catalog, stats).cost;
}

double EstimateCost(const PlanPtr& plan, const Catalog& catalog) {
  StatsCache transient;
  return EstimateCost(plan, catalog, transient);
}

}  // namespace quotient
