#include "opt/cost.hpp"

#include <algorithm>
#include <cmath>

namespace quotient {

namespace {

constexpr double kSelectSelectivity = 0.33;  // per predicate conjunct
constexpr double kContainmentProbability = 0.1;  // P(group ⊇ divisor)

double ConjunctCount(const ExprPtr& predicate) {
  std::vector<ExprPtr> conjuncts;
  Expr::SplitConjuncts(predicate, &conjuncts);
  return static_cast<double>(conjuncts.size());
}

Estimate Estimate_(const PlanPtr& plan, const Catalog& catalog) {
  const LogicalOp& op = *plan;
  auto child = [&](size_t i) { return Estimate_(op.child(i), catalog); };

  switch (op.kind()) {
    case LogicalOp::Kind::kScan: {
      double n = static_cast<double>(catalog.Get(op.table()).size());
      return {n, n};
    }
    case LogicalOp::Kind::kValues: {
      double n = static_cast<double>(op.values().size());
      return {n, n};
    }
    case LogicalOp::Kind::kSelect: {
      Estimate in = child(0);
      double selectivity = std::pow(kSelectSelectivity, ConjunctCount(op.predicate()));
      // Predicate evaluation is cheap relative to materializing operators.
      return {in.cardinality * selectivity, in.cost + 0.1 * in.cardinality};
    }
    case LogicalOp::Kind::kProject: {
      Estimate in = child(0);
      // Projection may collapse duplicates; assume mild reduction.
      return {in.cardinality * 0.8, in.cost + in.cardinality};
    }
    case LogicalOp::Kind::kRename: {
      Estimate in = child(0);
      return {in.cardinality, in.cost};
    }
    case LogicalOp::Kind::kUnion: {
      Estimate l = child(0), r = child(1);
      return {l.cardinality + r.cardinality,
              l.cost + r.cost + l.cardinality + r.cardinality};
    }
    case LogicalOp::Kind::kIntersect: {
      Estimate l = child(0), r = child(1);
      return {std::min(l.cardinality, r.cardinality) * 0.5,
              l.cost + r.cost + l.cardinality + r.cardinality};
    }
    case LogicalOp::Kind::kDifference: {
      Estimate l = child(0), r = child(1);
      return {l.cardinality * 0.5, l.cost + r.cost + l.cardinality + r.cardinality};
    }
    case LogicalOp::Kind::kProduct: {
      Estimate l = child(0), r = child(1);
      double out = l.cardinality * r.cardinality;
      return {out, l.cost + r.cost + out};
    }
    case LogicalOp::Kind::kThetaJoin: {
      Estimate l = child(0), r = child(1);
      double selectivity = std::pow(kSelectSelectivity, ConjunctCount(op.predicate()));
      double out = l.cardinality * r.cardinality * selectivity;
      // Hash equi-joins touch each input once; conservative middle ground.
      return {out, l.cost + r.cost + l.cardinality + r.cardinality + out};
    }
    case LogicalOp::Kind::kNaturalJoin: {
      Estimate l = child(0), r = child(1);
      double denominator = std::max(1.0, std::max(l.cardinality, r.cardinality));
      double out = l.cardinality * r.cardinality / denominator;
      return {out, l.cost + r.cost + l.cardinality + r.cardinality + out};
    }
    case LogicalOp::Kind::kSemiJoin: {
      Estimate l = child(0), r = child(1);
      return {l.cardinality * 0.5, l.cost + r.cost + l.cardinality + r.cardinality};
    }
    case LogicalOp::Kind::kAntiJoin: {
      Estimate l = child(0), r = child(1);
      return {l.cardinality * 0.5, l.cost + r.cost + l.cardinality + r.cardinality};
    }
    case LogicalOp::Kind::kDivide: {
      Estimate l = child(0), r = child(1);
      DivisionAttributes attrs = op.division_attributes();
      // Quotient candidates ~ dividend rows / average group size; every
      // dividend and divisor tuple is touched once (hash division), plus
      // per-candidate bitmap work proportional to the divisor size.
      double groups = std::max(1.0, l.cardinality / 4.0);
      double out = groups * kContainmentProbability;
      double bitmap_work = groups * std::max(1.0, r.cardinality) / 8.0;
      (void)attrs;
      return {out, l.cost + r.cost + l.cardinality + r.cardinality + bitmap_work};
    }
    case LogicalOp::Kind::kGreatDivide: {
      Estimate l = child(0), r = child(1);
      double groups = std::max(1.0, l.cardinality / 4.0);
      double divisor_groups = std::max(1.0, r.cardinality / 4.0);
      double out = groups * divisor_groups * kContainmentProbability;
      double counter_work = groups * divisor_groups / 8.0;
      return {out, l.cost + r.cost + l.cardinality + r.cardinality + counter_work};
    }
    case LogicalOp::Kind::kGroupBy: {
      Estimate in = child(0);
      double out = op.group_names().empty() ? 1.0 : std::max(1.0, in.cardinality / 4.0);
      return {out, in.cost + in.cardinality};
    }
  }
  return {0, 0};
}

}  // namespace

Estimate EstimatePlan(const PlanPtr& plan, const Catalog& catalog) {
  return Estimate_(plan, catalog);
}

double EstimateCost(const PlanPtr& plan, const Catalog& catalog) {
  return Estimate_(plan, catalog).cost;
}

}  // namespace quotient
