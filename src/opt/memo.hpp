#pragma once

// Memoized, cost-guided search over law applications.
//
// The greedy fixpoint (RewriteEngine::Rewrite) commits to the first
// matching rule at the topmost matching node; when two laws compete for
// the same subtree (Law 3's selection pushdown vs. Law 10's semijoin
// reshuffle, say) it cannot weigh them. MemoSearch explores the
// alternatives instead: states are whole logical plans, transitions are
// single rule applications (RewriteEngine::Enumerate), and exploration is
// best-first by estimated cost (opt/cost.hpp) under a candidate/step
// budget. The memo table deduplicates states by the injective plan
// fingerprint (opt/fingerprint.hpp), so plans reachable through different
// law orders are explored once — the memoization that makes term
// rewriting tractable (Chen & Mengel, arXiv 2411.10229).
//
// Determinism: enumeration order is deterministic, ties in the frontier
// break by insertion sequence, and the best plan prefers the deeper
// rewrite on exact cost ties (matching the greedy engine's bias toward
// applying laws). Search output therefore never depends on timing.

#include <cstddef>
#include <vector>

#include "core/engine.hpp"
#include "opt/cost.hpp"
#include "opt/stats.hpp"

namespace quotient {

struct MemoSearchOptions {
  /// Maximum law applications along one path (depth bound).
  size_t max_steps = 64;
  /// Maximum candidate plans costed across the whole search.
  size_t max_candidates = 256;
};

struct MemoSearchResult {
  PlanPtr best;             // cheapest plan found (the original when nothing beat it)
  double best_cost = 0;     // EstimateCost(best)
  /// Law path from the original to `best`, each step's cost_after filled.
  std::vector<RewriteStep> steps;
  size_t candidates = 0;    // distinct plans costed (the original included)
  size_t memo_hits = 0;     // duplicate states pruned by fingerprint
  bool budget_exhausted = false;  // frontier was non-empty when a budget hit
};

/// Explores law applications from `original` best-first and returns the
/// cheapest plan found. Never returns a plan worse than the original:
/// `best_cost <= EstimateCost(original)` by construction.
MemoSearchResult MemoSearch(const PlanPtr& original, const RewriteEngine& engine,
                            const RewriteContext& context, const Catalog& catalog,
                            const StatsCache& stats, const MemoSearchOptions& options);

}  // namespace quotient
