#pragma once

#include <memory>
#include <string>

#include "exec/exec_divide.hpp"
#include "exec/exec_great_divide.hpp"
#include "exec/iterator.hpp"
#include "exec/recycler.hpp"
#include "plan/evaluate.hpp"
#include "plan/logical.hpp"

namespace quotient {

class StatsCache;  // opt/stats.hpp

/// How the planner lowers logical division nodes.
struct PlannerOptions {
  /// Physical algorithm for ÷ nodes.
  DivisionAlgorithm division = DivisionAlgorithm::kHash;
  /// Physical algorithm for ÷* nodes.
  GreatDivideAlgorithm great_divide = GreatDivideAlgorithm::kHash;
  /// Compile ÷ into Healy's basic-algebra expansion
  /// πA(r1) − πA((πA(r1) × r2) − r1) instead of a first-class operator —
  /// the baseline that exhibits quadratic intermediate results ([25], §6).
  bool expand_divide = false;
  /// Cross-query artifact recycler (exec/recycler.hpp). When set, the
  /// planner attaches RecycleSpecs — plan-fragment fingerprints plus table
  /// data versions — to every blocking sink whose build side is a
  /// deterministic function of base tables, so repeated executions adopt
  /// cached divisor/join/grouping build state. Null disables recycling.
  std::shared_ptr<ArtifactRecycler> recycler;
};

/// Lowers a logical plan to a Volcano iterator tree over `catalog`.
/// ThetaJoins whose condition is a conjunction of cross-side column
/// equalities become hash equi-joins; other conditions fall back to a
/// nested-loop join. In parallel mode every operator also gets a
/// cost-model cardinality hint (Iterator::cost_rows_hint) driving the
/// executor's per-pipeline choices; `stats` feeds those estimates (pass
/// the snapshot's cache to share harvests across queries — a transient
/// one is used when null).
IterPtr BuildPhysicalPlan(const PlanPtr& plan, const Catalog& catalog,
                          const PlannerOptions& options = {},
                          const StatsCache* stats = nullptr);

/// Execution profile: per-operator row counts rolled up, plus the pipeline
/// structure the parallel executor ran (exec/pipeline.hpp). The compile-side
/// fields (rewrite_steps, plan_cache_hit, fallback_reason) are filled by the
/// Session front door (api/session.hpp) so EXPLAIN ANALYZE reports the full
/// compile+run story; ExecutePlan leaves them at their defaults.
struct ExecProfile {
  size_t total_rows = 0;      // sum of rows produced by every operator
  size_t max_rows = 0;        // largest single operator output
  size_t max_dop = 0;         // largest per-pipeline parallelism recorded
  std::string explain;        // EXPLAIN ANALYZE style tree (rows + dop)
  std::string pipelines;      // pipeline decomposition with per-pipeline dop
  size_t rewrite_steps = 0;   // law rewrites applied during compilation
  // Cost-guided search accounting (opt/memo.hpp), filled by the optimizer
  // driver: candidate plans costed and duplicate states the memo pruned.
  // Both zero when OptimizerOptions::search is off or the plan was cached.
  size_t search_candidates = 0;
  size_t memo_hits = 0;
  bool plan_cache_hit = false;    // compiled plan served from the LRU cache
  std::string fallback_reason;    // nonempty when the oracle interpreter ran
  // Governor accounting (exec/query_context.hpp), filled by the Session:
  size_t rows_charged_bytes = 0;  // approximate build-state bytes charged
  bool cancelled = false;         // the statement tripped kCancelled
  std::string fault_site;         // injected fault that fired ("" = none)
  // Spill accounting (exec/spill.hpp): flushes of build state to the
  // statement's temp file. Zero when the watermark was never crossed.
  size_t spill_partitions = 0;
  size_t spill_bytes_written = 0;
  // Artifact recycler accounting (exec/recycler.hpp): build-state lookups
  // this statement made against the shared cache. A hit means a blocking
  // sink adopted a cached build instead of draining its input.
  size_t recycler_hits = 0;
  size_t recycler_misses = 0;
};

class QueryContext;

/// Builds, runs, and drains a physical plan; fills `profile` if given.
/// When `context` is set it is installed as the current query governor for
/// the drain (exec/query_context.hpp): morsel loops and blocking builds
/// poll it, and a trip unwinds as QueryAbort — callers own converting that
/// to a Status. Governor accounting fields of `profile` are filled from it.
Relation ExecutePlan(const PlanPtr& plan, const Catalog& catalog,
                     const PlannerOptions& options = {}, ExecProfile* profile = nullptr,
                     QueryContext* context = nullptr, const StatsCache* stats = nullptr);

}  // namespace quotient
