#include "opt/memo.hpp"

#include <queue>
#include <unordered_set>
#include <utility>

#include "opt/fingerprint.hpp"

namespace quotient {

namespace {

/// Memo key of a plan: the injective fingerprint when available, else a
/// rendering-based fallback for plans with VALUES/param leaves. The
/// fallback is not injective (two distinct VALUES relations can share a
/// label), but a collision only prunes exploration of one duplicate-keyed
/// state — it never corrupts the chosen plan, whose cost and shape are
/// computed from the real plan object.
std::string MemoKey(const PlanPtr& plan) {
  std::string key;
  if (FingerprintPlan(plan, &key)) return key;
  return "s:" + plan->ToString();
}

struct SearchState {
  PlanPtr plan;
  double cost = 0;
  std::vector<RewriteStep> steps;
  size_t seq = 0;  // insertion order, the deterministic tiebreak
};

struct FrontierOrder {
  // std::priority_queue pops the LARGEST element, so invert: cheaper cost
  // first, earlier insertion on ties.
  bool operator()(const SearchState& a, const SearchState& b) const {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.seq > b.seq;
  }
};

}  // namespace

MemoSearchResult MemoSearch(const PlanPtr& original, const RewriteEngine& engine,
                            const RewriteContext& context, const Catalog& catalog,
                            const StatsCache& stats, const MemoSearchOptions& options) {
  MemoSearchResult result;
  result.best = original;
  result.best_cost = EstimateCost(original, catalog, stats);
  result.candidates = 1;

  std::unordered_set<std::string> visited;
  visited.insert(MemoKey(original));

  std::priority_queue<SearchState, std::vector<SearchState>, FrontierOrder> frontier;
  size_t seq = 0;
  frontier.push({original, result.best_cost, {}, seq++});

  while (!frontier.empty()) {
    if (result.candidates >= options.max_candidates) {
      result.budget_exhausted = true;
      break;
    }
    SearchState state = frontier.top();
    frontier.pop();
    if (state.steps.size() >= options.max_steps) {
      result.budget_exhausted = true;
      continue;
    }
    for (RewriteAlternative& alt : engine.Enumerate(state.plan, context)) {
      std::string key = MemoKey(alt.plan);
      if (!visited.insert(std::move(key)).second) {
        ++result.memo_hits;
        continue;
      }
      double cost = EstimateCost(alt.plan, catalog, stats);
      ++result.candidates;
      SearchState next;
      next.plan = alt.plan;
      next.cost = cost;
      next.steps = state.steps;
      alt.step.cost_after = cost;
      next.steps.push_back(std::move(alt.step));
      next.seq = seq++;
      // Strictly cheaper wins; on an exact tie prefer the deeper rewrite,
      // matching the greedy engine's bias toward applying laws.
      if (cost < result.best_cost ||
          (cost == result.best_cost && next.steps.size() > result.steps.size())) {
        result.best = next.plan;
        result.best_cost = cost;
        result.steps = next.steps;
      }
      frontier.push(std::move(next));
      if (result.candidates >= options.max_candidates) break;
    }
  }
  if (result.candidates >= options.max_candidates && !frontier.empty()) {
    result.budget_exhausted = true;
  }
  return result;
}

}  // namespace quotient
