#pragma once

// Injective type-tagged fingerprints of logical plan fragments.
//
// A fingerprint is a type-tagged serialization of a logical subtree. It is
// INJECTIVE over fingerprintable fragments: two fragments share a
// fingerprint only if they are structurally identical. ToString()
// renderings are NOT injective (Int(1) and Str("1") both print "1"), so
// literals carry a type tag and strings a length prefix. Fragments
// containing VALUES leaves or unbound '?' slots are not fingerprintable —
// their content is invisible to the key.
//
// Two consumers share this machinery:
//   * the artifact recycler (exec/recycler.hpp) keys cross-query build
//     state on VersionedFingerprint (fingerprint + per-table data
//     versions), making stale artifacts unaddressable after DDL;
//   * the rewrite memo (opt/memo.hpp) deduplicates logical subtrees the
//     cost-guided search reaches through different law orders.

#include <string>
#include <vector>

#include "plan/catalog.hpp"
#include "plan/logical.hpp"

namespace quotient {

/// Appends an injective serialization of `v` to `*out`.
void FingerprintValue(const Value& v, std::string* out);

/// Appends an injective serialization of `e`. Returns false when the
/// expression contains a '?' parameter slot (content invisible to the key).
bool FingerprintExpr(const ExprPtr& e, std::string* out);

/// Appends a length-prefixed serialization of a name list.
void FingerprintNames(const std::vector<std::string>& names, std::string* out);

/// Appends an injective serialization of the logical subtree. Returns false
/// when the subtree contains a VALUES leaf or a '?' slot.
bool FingerprintPlan(const PlanPtr& plan, std::string* out);

/// Fingerprints `plan` and appends the per-table data version of every base
/// table it scans (from the pinned snapshot catalog), making stale artifacts
/// unaddressable after DDL. Returns "" when the subtree is not
/// fingerprintable; otherwise also merges the scanned tables into `tables`
/// (the cache entry's invalidation domain).
std::string VersionedFingerprint(const PlanPtr& plan, const Catalog& catalog,
                                 std::vector<std::string>* tables);

}  // namespace quotient
