#include "opt/planner.hpp"

#include "opt/fingerprint.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "exec/exec_agg.hpp"
#include "exec/exec_basic.hpp"
#include "exec/exec_join.hpp"
#include "exec/pipeline.hpp"
#include "exec/query_context.hpp"
#include "opt/cost.hpp"
#include "util/status.hpp"

namespace quotient {

namespace {

/// Detects a conjunction of cross-side column equalities; fills the key
/// column names when eligible.
bool IsEquiJoinCondition(const ExprPtr& condition, const Schema& left, const Schema& right,
                         std::vector<std::string>* left_keys,
                         std::vector<std::string>* right_keys) {
  std::vector<ExprPtr> conjuncts;
  Expr::SplitConjuncts(condition, &conjuncts);
  for (const ExprPtr& conjunct : conjuncts) {
    if (conjunct->kind() != Expr::Kind::kCompare || conjunct->cmp_op() != CmpOp::kEq) {
      return false;
    }
    const ExprPtr& l = conjunct->left();
    const ExprPtr& r = conjunct->right();
    if (l->kind() != Expr::Kind::kColumn || r->kind() != Expr::Kind::kColumn) return false;
    const std::string& lc = l->column_name();
    const std::string& rc = r->column_name();
    if (left.Contains(lc) && right.Contains(rc)) {
      left_keys->push_back(lc);
      right_keys->push_back(rc);
    } else if (left.Contains(rc) && right.Contains(lc)) {
      left_keys->push_back(rc);
      right_keys->push_back(lc);
    } else {
      return false;
    }
  }
  return !left_keys->empty();
}

/// Healy's expansion of r1 ÷ r2 as a logical plan over the original
/// subplans: πA(r1) − πA((πA(r1) × r2) − r1).
PlanPtr HealyExpansion(const PlanPtr& dividend, const PlanPtr& divisor) {
  DivisionAttributes attrs =
      DivisionAttributeSets(dividend->schema(), divisor->schema(), /*allow_c=*/false);
  PlanPtr pa = LogicalOp::Project(dividend, attrs.a);
  PlanPtr spoilers = LogicalOp::Project(
      LogicalOp::Difference(LogicalOp::Product(pa, divisor), dividend), attrs.a);
  return LogicalOp::Difference(pa, spoilers);
}

// Plan-fragment fingerprints (FingerprintPlan / VersionedFingerprint) live
// in opt/fingerprint.{hpp,cpp}, shared between the artifact recycler's
// cache keys and the rewrite memo's subtree deduplication.

/// Composes the divisions' RecycleSpec: build_key addresses the divisor-side
/// artifact, probe_key the full probe state that additionally captures the
/// dividend drain. The physical algorithm is deliberately absent from both
/// keys — every division algorithm runs over the same encoded state — and so
/// is the execution mode (chunk-ordered merges make build state bit-identical
/// across modes and thread counts, docs/parallel_execution.md). The tag
/// ("div"/"gd") selects the artifact type the adopting iterator casts to, so
/// it must differ wherever the concrete artifact struct differs.
RecycleSpec DivideRecycleSpec(const std::string& tag, const LogicalOp& op,
                              const Catalog& catalog, const PlannerOptions& options) {
  RecycleSpec spec;
  if (options.recycler == nullptr) return spec;
  std::string divisor_fp = VersionedFingerprint(op.child(1), catalog, &spec.tables);
  if (divisor_fp.empty()) return spec;
  spec.recycler = options.recycler;
  spec.build_key = tag + ".build|" + divisor_fp;
  std::string dividend_fp = VersionedFingerprint(op.child(0), catalog, &spec.tables);
  if (!dividend_fp.empty()) {
    spec.probe_key = tag + ".probe|" + dividend_fp + "|" + divisor_fp;
  }
  return spec;
}

/// Composes a build-side-only RecycleSpec (joins, grouping). `context`
/// captures everything outside the build subtree that shapes the artifact:
/// the probe-side schema names for natural/semi joins (they pick the key
/// columns and bucket projections) and the key columns for equi joins.
RecycleSpec BuildSideRecycleSpec(const std::string& tag, const PlanPtr& build_side,
                                 const std::string& context, const Catalog& catalog,
                                 const PlannerOptions& options) {
  RecycleSpec spec;
  if (options.recycler == nullptr) return spec;
  std::string fp = VersionedFingerprint(build_side, catalog, &spec.tables);
  if (fp.empty()) return spec;
  spec.recycler = options.recycler;
  spec.build_key = tag + "|" + context + "|" + fp;
  return spec;
}

std::string SchemaNamesContext(const Schema& schema) {
  std::string context;
  FingerprintNames(schema.Names(), &context);
  return context;
}

/// Common-subexpression materialization: rewrite rules deliberately share
/// subplans by pointer (e.g. Laws 11/12 reuse the grouped dividend in the
/// guard and in the result), so any node referenced more than once in the
/// plan DAG is evaluated once and served from a cached relation.
struct BuildContext {
  std::unordered_map<const LogicalOp*, int> use_counts;
  std::unordered_map<const LogicalOp*, std::shared_ptr<const Relation>> materialized;
  /// Feeds per-node cost hints (Iterator::cost_rows_hint) for the
  /// executor's per-pipeline costed choices; never null inside a build.
  const StatsCache* stats = nullptr;
};

void CountUses(const PlanPtr& plan, std::unordered_map<const LogicalOp*, int>* counts) {
  (*counts)[plan.get()] += 1;
  if ((*counts)[plan.get()] > 1) return;  // children already counted once
  for (const PlanPtr& child : plan->children()) CountUses(child, counts);
}

IterPtr Build(const PlanPtr& plan, const Catalog& catalog, const PlannerOptions& options,
              BuildContext* context);

IterPtr BuildShared(const PlanPtr& plan, const Catalog& catalog,
                    const PlannerOptions& options, BuildContext* context) {
  bool shared = context != nullptr && context->use_counts[plan.get()] > 1 &&
                plan->kind() != LogicalOp::Kind::kScan &&
                plan->kind() != LogicalOp::Kind::kValues;
  if (shared) {
    auto it = context->materialized.find(plan.get());
    if (it == context->materialized.end()) {
      IterPtr built = Build(plan, catalog, options, context);
      auto relation = std::make_shared<const Relation>(ExecuteToRelation(*built));
      it = context->materialized.emplace(plan.get(), std::move(relation)).first;
    }
    return std::make_unique<RelationScan>(it->second);
  }
  return Build(plan, catalog, options, context);
}

IterPtr BuildNode(const PlanPtr& plan, const Catalog& catalog, const PlannerOptions& options,
                  BuildContext* context) {
  auto child = [&](size_t i) { return BuildShared(plan->child(i), catalog, options, context); };
  (void)child;
  const LogicalOp& op = *plan;
  switch (op.kind()) {
    case LogicalOp::Kind::kScan:
      // Batched and parallel plans scan through the catalog's cached
      // per-table dictionary encoding, so repeated queries share encode
      // work across Open()s and morsel workers share one immutable table
      // encoding. The scan holds an OWNING handle to the relation, so a
      // plan built against one catalog snapshot stays valid after DDL
      // publishes a newer one (api/database.hpp).
      return std::make_unique<RelationScan>(
          catalog.GetShared(op.table()),
          GetExecMode() != ExecMode::kTuple ? catalog.Encoding(op.table()) : nullptr);
    case LogicalOp::Kind::kValues:
      return std::make_unique<RelationScan>(
          std::make_shared<const Relation>(op.values()));
    case LogicalOp::Kind::kSelect:
      return std::make_unique<FilterIterator>(child(0),
                                              op.predicate());
    case LogicalOp::Kind::kProject:
      return std::make_unique<ProjectIterator>(child(0),
                                               op.columns());
    case LogicalOp::Kind::kUnion:
      return std::make_unique<UnionIterator>(child(0),
                                             child(1));
    case LogicalOp::Kind::kIntersect:
      return std::make_unique<IntersectIterator>(child(0),
                                                 child(1));
    case LogicalOp::Kind::kDifference:
      return std::make_unique<DifferenceIterator>(child(0),
                                                  child(1));
    case LogicalOp::Kind::kProduct:
      return std::make_unique<CrossProductIterator>(child(0),
                                                    child(1));
    case LogicalOp::Kind::kThetaJoin: {
      std::vector<std::string> left_keys, right_keys;
      if (IsEquiJoinCondition(op.predicate(), op.child(0)->schema(), op.child(1)->schema(),
                              &left_keys, &right_keys)) {
        std::string key_context = "keys=";
        FingerprintNames(left_keys, &key_context);
        key_context += '/';
        FingerprintNames(right_keys, &key_context);
        auto join = std::make_unique<EquiJoinIterator>(child(0),
                                                       child(1),
                                                       std::move(left_keys),
                                                       std::move(right_keys));
        join->SetRecycle(
            BuildSideRecycleSpec("join.equi", op.child(1), key_context, catalog, options));
        return join;
      }
      return std::make_unique<NestedLoopJoinIterator>(child(0),
                                                      child(1),
                                                      op.predicate());
    }
    case LogicalOp::Kind::kNaturalJoin: {
      auto join = std::make_unique<HashJoinIterator>(child(0),
                                                     child(1));
      join->SetRecycle(BuildSideRecycleSpec("join.natural", op.child(1),
                                            SchemaNamesContext(op.child(0)->schema()),
                                            catalog, options));
      return join;
    }
    case LogicalOp::Kind::kSemiJoin:
    case LogicalOp::Kind::kAntiJoin: {
      // Semi and anti joins share one build key: the membership set is
      // identical, only the probe's keep-test differs.
      auto join = std::make_unique<HashSemiJoinIterator>(
          child(0), child(1), /*anti=*/op.kind() == LogicalOp::Kind::kAntiJoin);
      join->SetRecycle(BuildSideRecycleSpec("join.semi", op.child(1),
                                            SchemaNamesContext(op.child(0)->schema()),
                                            catalog, options));
      return join;
    }
    case LogicalOp::Kind::kDivide: {
      if (options.expand_divide) {
        return Build(HealyExpansion(op.child(0), op.child(1)), catalog, options, context);
      }
      auto div = std::make_unique<DivisionIterator>(child(0),
                                                    child(1),
                                                    options.division);
      div->SetRecycle(DivideRecycleSpec("div", op, catalog, options));
      return div;
    }
    case LogicalOp::Kind::kGreatDivide: {
      DivisionAttributes attrs = op.division_attributes();
      if (attrs.c.empty()) {
        // Lowered to the same small-divide iterator — and the same "div"
        // keys: with identical children the encoded state is identical, so
        // ÷ and a C-free ÷* share artifacts.
        auto div = std::make_unique<DivisionIterator>(child(0),
                                                      child(1),
                                                      options.division);
        div->SetRecycle(DivideRecycleSpec("div", op, catalog, options));
        return div;
      }
      auto gd = std::make_unique<GreatDivideIterator>(child(0),
                                                      child(1),
                                                      options.great_divide);
      gd->SetRecycle(DivideRecycleSpec("gd", op, catalog, options));
      return gd;
    }
    case LogicalOp::Kind::kGroupBy: {
      auto agg = std::make_unique<HashAggregateIterator>(child(0),
                                                         op.group_names(), op.aggs());
      // Fingerprint the GroupBy node itself: the grouping columns and
      // aggregate specs are part of the node's serialization, so no extra
      // context string is needed.
      agg->SetRecycle(BuildSideRecycleSpec("agg", plan, "", catalog, options));
      return agg;
    }
    case LogicalOp::Kind::kRename:
      return std::make_unique<RenameIterator>(child(0),
                                              op.renames());
  }
  throw SchemaError("planner: bad logical operator kind");
}

IterPtr Build(const PlanPtr& plan, const Catalog& catalog, const PlannerOptions& options,
              BuildContext* context) {
  IterPtr built = BuildNode(plan, catalog, options, context);
  // Tag the operator with its cost-model cardinality so the executor's
  // per-pipeline choices (ChoosePipeline, exec/pipeline.hpp) see through
  // filters and divisions instead of trusting structural upper bounds.
  // Only the parallel executor consults the hints, so the other modes skip
  // the estimation pass. Harvests stay cheap: a scan's BuildNode above just
  // warmed the catalog's encoding cache, so the stats layer reads dictionary
  // sizes instead of rescanning data (opt/stats.hpp).
  if (context != nullptr && context->stats != nullptr &&
      GetExecMode() == ExecMode::kParallel) {
    built->set_cost_rows_hint(EstimatePlan(plan, catalog, *context->stats).cardinality);
  }
  return built;
}

}  // namespace

IterPtr BuildPhysicalPlan(const PlanPtr& plan, const Catalog& catalog,
                          const PlannerOptions& options, const StatsCache* stats) {
  BuildContext context;
  CountUses(plan, &context.use_counts);
  StatsCache transient;
  context.stats = stats != nullptr ? stats : &transient;
  return Build(plan, catalog, options, &context);
}

Relation ExecutePlan(const PlanPtr& plan, const Catalog& catalog, const PlannerOptions& options,
                     ExecProfile* profile, QueryContext* context, const StatsCache* stats) {
  ScopedQueryContext scope(context != nullptr ? context : CurrentQueryContext());
  IterPtr root = BuildPhysicalPlan(plan, catalog, options, stats);
  Relation result = ExecuteToRelation(*root);
  if (profile != nullptr) {
    profile->total_rows = TotalRowsProduced(*root);
    profile->max_rows = MaxRowsProduced(*root);
    profile->max_dop = MaxPipelineDop(*root);
    profile->explain = ExplainTree(*root);
    profile->pipelines = DescribePipelines(*root);
    if (QueryContext* ctx = CurrentQueryContext()) {
      profile->rows_charged_bytes = ctx->charged_bytes();
      profile->cancelled = ctx->cancelled();
      profile->fault_site = ctx->fault_site();
      profile->spill_partitions = ctx->spill_partitions();
      profile->spill_bytes_written = ctx->spill_bytes_written();
      profile->recycler_hits = ctx->recycler_hits();
      profile->recycler_misses = ctx->recycler_misses();
    }
  }
  return result;
}

}  // namespace quotient
