#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "plan/catalog.hpp"

namespace quotient {
namespace mining {

/// A frequent itemset with its absolute support (number of transactions
/// containing every item).
struct FrequentItemset {
  std::vector<int64_t> items;  // sorted
  int64_t support = 0;

  bool operator==(const FrequentItemset& other) const = default;
};

/// How the support-counting phase is executed (§3):
///   kGreatDivide — quotient = transactions ÷* candidates on the vertical
///                  layout, then group/count/filter (the paper's proposal);
///   kHashProbe   — direct subset probing of per-transaction hash sets
///                  (classic Apriori baseline);
///   kSqlDivide   — the literal §4 SQL query with DIVIDE BY, GROUP BY and
///                  HAVING, run through the SQL front end.
enum class SupportCounting { kGreatDivide, kHashProbe, kSqlDivide };

const char* SupportCountingName(SupportCounting method);

/// Apriori frequent itemset discovery over a vertical transactions table
/// (tid, item). Candidate generation is the standard k-1 self-join with
/// subset pruning; support counting is pluggable. Note the great-divide
/// path does NOT require all candidates to have the same size k (§3) — the
/// per-level calls here are just Apriori's usual schedule.
class Apriori {
 public:
  /// `transactions` must have schema (tid, item) with int attributes.
  Apriori(Relation transactions, int64_t min_support, SupportCounting method);

  /// All frequent itemsets, sorted by (size, items).
  std::vector<FrequentItemset> Run();

  /// Candidate k-itemsets from the frequent (k-1)-itemsets.
  static std::vector<std::vector<int64_t>> GenerateCandidates(
      const std::vector<std::vector<int64_t>>& frequent_previous);

  /// The §3 vertical candidates relation candidates(item, itemset) where
  /// `itemset` is the candidate's index in `candidates`.
  static Relation CandidatesRelation(const std::vector<std::vector<int64_t>>& candidates);

  /// Counts support for each candidate with the configured method; returns
  /// per-candidate support aligned with `candidates`.
  std::vector<int64_t> CountSupport(const std::vector<std::vector<int64_t>>& candidates);

 private:
  std::vector<int64_t> CountViaGreatDivide(const std::vector<std::vector<int64_t>>& candidates);
  std::vector<int64_t> CountViaHashProbe(const std::vector<std::vector<int64_t>>& candidates);
  std::vector<int64_t> CountViaSql(const std::vector<std::vector<int64_t>>& candidates);

  Relation transactions_;
  int64_t min_support_;
  SupportCounting method_;
};

}  // namespace mining
}  // namespace quotient
