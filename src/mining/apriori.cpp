#include "mining/apriori.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "algebra/divide.hpp"
#include "exec/exec_great_divide.hpp"
#include "algebra/ops.hpp"
#include "sql/interp.hpp"
#include "util/status.hpp"

namespace quotient {
namespace mining {

const char* SupportCountingName(SupportCounting method) {
  switch (method) {
    case SupportCounting::kGreatDivide: return "GreatDivide";
    case SupportCounting::kHashProbe: return "HashProbe";
    case SupportCounting::kSqlDivide: return "SqlDivide";
  }
  return "?";
}

Apriori::Apriori(Relation transactions, int64_t min_support, SupportCounting method)
    : transactions_(std::move(transactions)), min_support_(min_support), method_(method) {
  if (transactions_.schema().size() != 2 ||
      transactions_.schema().attribute(0).name != "tid" ||
      transactions_.schema().attribute(1).name != "item") {
    throw SchemaError("Apriori expects a transactions(tid, item) relation");
  }
}

std::vector<std::vector<int64_t>> Apriori::GenerateCandidates(
    const std::vector<std::vector<int64_t>>& frequent_previous) {
  // Classic Apriori-gen: join L_{k-1} pairs sharing the first k-2 items,
  // then prune candidates with an infrequent (k-1)-subset.
  std::vector<std::vector<int64_t>> candidates;
  std::set<std::vector<int64_t>> previous(frequent_previous.begin(), frequent_previous.end());
  for (size_t i = 0; i < frequent_previous.size(); ++i) {
    for (size_t j = i + 1; j < frequent_previous.size(); ++j) {
      const std::vector<int64_t>& a = frequent_previous[i];
      const std::vector<int64_t>& b = frequent_previous[j];
      if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) continue;
      std::vector<int64_t> merged = a;
      merged.push_back(b.back());
      if (merged[merged.size() - 2] > merged.back()) {
        std::swap(merged[merged.size() - 2], merged[merged.size() - 1]);
      }
      // Prune: every (k-1)-subset must be frequent.
      bool all_frequent = true;
      for (size_t drop = 0; drop + 2 < merged.size() && all_frequent; ++drop) {
        std::vector<int64_t> subset;
        for (size_t m = 0; m < merged.size(); ++m) {
          if (m != drop) subset.push_back(merged[m]);
        }
        all_frequent = previous.count(subset) > 0;
      }
      if (all_frequent) candidates.push_back(std::move(merged));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
  return candidates;
}

Relation Apriori::CandidatesRelation(const std::vector<std::vector<int64_t>>& candidates) {
  std::vector<Tuple> rows;
  for (size_t c = 0; c < candidates.size(); ++c) {
    for (int64_t item : candidates[c]) {
      rows.push_back({Value::Int(item), Value::Int(static_cast<int64_t>(c))});
    }
  }
  return Relation(Schema::Parse("item, itemset"), std::move(rows));
}

std::vector<int64_t> Apriori::CountViaGreatDivide(
    const std::vector<std::vector<int64_t>>& candidates) {
  // §3: quotient = transactions ÷* candidates, then count tids per itemset.
  // Uses the physical hash great divide (one dividend pass) rather than the
  // definitional group-at-a-time evaluator.
  Relation quotient = ExecGreatDivide(transactions_, CandidatesRelation(candidates),
                                      GreatDivideAlgorithm::kHash);
  Relation counts = GroupBy(quotient, {"itemset"}, {{AggFunc::kCount, "tid", "support"}});
  std::vector<int64_t> support(candidates.size(), 0);
  size_t itemset_idx = counts.schema().IndexOfOrThrow("itemset");
  size_t support_idx = counts.schema().IndexOfOrThrow("support");
  for (const Tuple& t : counts.tuples()) {
    support[static_cast<size_t>(t[itemset_idx].as_int())] = t[support_idx].as_int();
  }
  return support;
}

std::vector<int64_t> Apriori::CountViaHashProbe(
    const std::vector<std::vector<int64_t>>& candidates) {
  // Baseline: materialize each transaction's item set, probe each candidate.
  std::unordered_map<int64_t, std::unordered_set<int64_t>> baskets;
  for (const Tuple& t : transactions_.tuples()) {
    baskets[t[0].as_int()].insert(t[1].as_int());
  }
  std::vector<int64_t> support(candidates.size(), 0);
  for (const auto& [tid, basket] : baskets) {
    for (size_t c = 0; c < candidates.size(); ++c) {
      bool contains = true;
      for (int64_t item : candidates[c]) {
        if (!basket.count(item)) {
          contains = false;
          break;
        }
      }
      if (contains) support[c] += 1;
    }
  }
  return support;
}

std::vector<int64_t> Apriori::CountViaSql(
    const std::vector<std::vector<int64_t>>& candidates) {
  Catalog catalog;
  catalog.Put("transactions", transactions_);
  catalog.Put("candidates", CandidatesRelation(candidates));
  // The §3/§4 query, verbatim shape:
  Result<Relation> counts = sql::ExecuteSql(
      "SELECT itemset, COUNT(tid) AS support "
      "FROM (SELECT tid, itemset FROM transactions AS t DIVIDE BY candidates AS c "
      "      ON t.item = c.item) AS q "
      "GROUP BY itemset",
      catalog);
  if (!counts.ok()) throw SchemaError("mining SQL failed: " + counts.error());
  std::vector<int64_t> support(candidates.size(), 0);
  const Relation& r = counts.value();
  size_t itemset_idx = r.schema().IndexOfOrThrow("itemset");
  size_t support_idx = r.schema().IndexOfOrThrow("support");
  for (const Tuple& t : r.tuples()) {
    support[static_cast<size_t>(t[itemset_idx].as_int())] = t[support_idx].as_int();
  }
  return support;
}

std::vector<int64_t> Apriori::CountSupport(
    const std::vector<std::vector<int64_t>>& candidates) {
  if (candidates.empty()) return {};
  switch (method_) {
    case SupportCounting::kGreatDivide: return CountViaGreatDivide(candidates);
    case SupportCounting::kHashProbe: return CountViaHashProbe(candidates);
    case SupportCounting::kSqlDivide: return CountViaSql(candidates);
  }
  return {};
}

std::vector<FrequentItemset> Apriori::Run() {
  std::vector<FrequentItemset> result;

  // Level 1: plain item frequencies.
  std::map<int64_t, int64_t> item_counts;
  for (const Tuple& t : transactions_.tuples()) item_counts[t[1].as_int()] += 1;
  std::vector<std::vector<int64_t>> frequent;
  for (const auto& [item, count] : item_counts) {
    if (count >= min_support_) {
      frequent.push_back({item});
      result.push_back({{item}, count});
    }
  }

  // Levels k >= 2: generate, count, filter.
  while (!frequent.empty()) {
    std::vector<std::vector<int64_t>> candidates = GenerateCandidates(frequent);
    if (candidates.empty()) break;
    std::vector<int64_t> support = CountSupport(candidates);
    std::vector<std::vector<int64_t>> next;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (support[c] >= min_support_) {
        next.push_back(candidates[c]);
        result.push_back({candidates[c], support[c]});
      }
    }
    frequent = std::move(next);
  }

  std::sort(result.begin(), result.end(), [](const FrequentItemset& a, const FrequentItemset& b) {
    if (a.items.size() != b.items.size()) return a.items.size() < b.items.size();
    return a.items < b.items;
  });
  return result;
}

}  // namespace mining
}  // namespace quotient
