// The Section 4 walk-through on the Session API: the hypothetical DIVIDE BY
// syntax against the suppliers-and-parts database, the double-NOT-EXISTS
// formulation Q3 (which the compiler cannot express — it transparently runs
// on the oracle interpreter, with the reason recorded), and EXPLAIN ANALYZE
// showing the full compile+run story.

#include <cstdio>

#include "api/session.hpp"

using namespace quotient;

namespace {

void RunAndShow(Session& session, const char* label, const char* query) {
  std::printf("-- %s\n%s\n", label, query);
  Result<QueryResult> result = session.Execute(query);
  if (!result.ok()) {
    std::printf("ERROR: %s\n\n", result.error().c_str());
    return;
  }
  std::printf("%s", result.value().rows.ToString().c_str());
  if (result.value().compile.compiled) {
    std::printf("[compiled; %zu law rewrite(s)]\n\n",
                result.value().profile.rewrite_steps);
  } else {
    std::printf("[oracle fallback: %s]\n\n",
                result.value().compile.fallback_reason.c_str());
  }
}

}  // namespace

int main() {
  Session session;
  session.CreateTable("supplies", Relation::Parse("s#, p#",
                                                  "1,1; 1,2; 1,3; 1,4;"
                                                  "2,1; 2,3;"
                                                  "3,2; 3,4;"
                                                  "4,1; 4,2"));
  session.CreateTable("parts",
                      Relation::FromRows("p#:int, color:string", {{V(1), V("blue")},
                                                                  {V(2), V("red")},
                                                                  {V(3), V("blue")},
                                                                  {V(4), V("red")}}));

  RunAndShow(session, "Q1: great divide — all parts of each color",
             "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#");

  RunAndShow(session, "Q2: small divide — all blue parts",
             "SELECT s# FROM supplies AS s DIVIDE BY ("
             "SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#");

  // Q3 nests a correlation two query levels deep; detecting the division
  // hiding inside is exactly what the paper calls hard (§4). The Session
  // falls back to the tuple-calculus oracle and says so.
  RunAndShow(session, "Q3: the same as Q1 via double NOT EXISTS",
             "SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 "
             "WHERE NOT EXISTS (SELECT * FROM parts AS p2 WHERE p2.color = p1.color "
             "AND NOT EXISTS (SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p# AND "
             "s2.s# = s1.s#))");

  // One-level equality correlation, by contrast, IS expressible: the
  // compiler turns it into a semi-join.
  RunAndShow(session, "one-level EXISTS compiles to a semi-join",
             "SELECT DISTINCT s# FROM supplies AS s1 WHERE EXISTS ("
             "SELECT * FROM parts AS p WHERE p.p# = s1.p# AND p.color = 'blue')");

  // EXPLAIN ANALYZE: rewrite trace, plan-cache flag, dop, and the operator
  // profile of the parallel pipeline executor, as one relation of lines.
  Result<QueryResult> explain = session.Execute(
      "EXPLAIN ANALYZE SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p "
      "ON s.p# = p.p# WHERE color = 'red'");
  if (explain.ok()) {
    std::printf("-- EXPLAIN ANALYZE of the filtered Q1:\n");
    for (const Tuple& line : explain.value().rows.tuples()) {
      std::printf("%s\n", line[1].ToString().c_str());
    }
  }
  return 0;
}
