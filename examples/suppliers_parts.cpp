// The Section 4 walk-through: the hypothetical DIVIDE BY syntax against the
// suppliers-and-parts database, including the double-NOT-EXISTS formulation
// Q3 and the check that it equals the divide-based Q1.

#include <cstdio>

#include "plan/catalog.hpp"
#include "sql/binder.hpp"
#include "sql/interp.hpp"

using namespace quotient;

namespace {

void RunAndShow(const char* label, const char* query, const Catalog& catalog) {
  std::printf("-- %s\n%s\n", label, query);
  Result<Relation> result = sql::ExecuteSql(query, catalog);
  if (!result.ok()) {
    std::printf("ERROR: %s\n\n", result.error().c_str());
    return;
  }
  std::printf("%s\n", result.value().ToString().c_str());
}

}  // namespace

int main() {
  Catalog catalog;
  catalog.Put("supplies", Relation::Parse("s#, p#",
                                          "1,1; 1,2; 1,3; 1,4;"
                                          "2,1; 2,3;"
                                          "3,2; 3,4;"
                                          "4,1; 4,2"));
  catalog.Put("parts",
              Relation::FromRows("p#:int, color:string", {{V(1), V("blue")},
                                                          {V(2), V("red")},
                                                          {V(3), V("blue")},
                                                          {V(4), V("red")}}));

  RunAndShow("Q1: great divide — all parts of each color",
             "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#",
             catalog);

  RunAndShow("Q2: small divide — all blue parts",
             "SELECT s# FROM supplies AS s DIVIDE BY ("
             "SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#",
             catalog);

  RunAndShow("Q3: the same as Q1 via double NOT EXISTS",
             "SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 "
             "WHERE NOT EXISTS (SELECT * FROM parts AS p2 WHERE p2.color = p1.color "
             "AND NOT EXISTS (SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p# AND "
             "s2.s# = s1.s#))",
             catalog);

  // The plannable path: Q1 becomes a first-class GreatDivide operator.
  Result<PlanPtr> plan = sql::PlanSql(
      "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#", catalog);
  if (plan.ok()) {
    std::printf("-- Q1 as a logical plan (note the first-class GreatDivide):\n%s\n",
                plan.value()->ToString().c_str());
  }

  // Q3 is rejected by the binder — detecting division inside NOT EXISTS is
  // exactly what the paper says is hard (§4); only the interpreter runs it.
  Result<PlanPtr> q3_plan = sql::PlanSql(
      "SELECT DISTINCT s# FROM supplies AS s1 WHERE NOT EXISTS (SELECT * FROM parts)",
      catalog);
  std::printf("-- binder on a NOT EXISTS query: %s\n",
              q3_plan.ok() ? "planned (unexpected)" : q3_plan.error().c_str());
  return 0;
}
