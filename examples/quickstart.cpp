// Quickstart: open a Session — the engine's one front door — load the
// suppliers-and-parts data, and ask the classic universal-quantification
// question from the paper's introduction ("find the suppliers that supply
// all blue parts") with the §4 DIVIDE BY syntax. Every statement here is
// parsed, lowered to a logical plan with first-class division, rewritten by
// the paper's laws, and executed on the parallel pipeline executor.

#include <cstdio>

#include "api/session.hpp"

using namespace quotient;

namespace {

void Show(const char* label, Result<QueryResult> result) {
  std::printf("-- %s\n", label);
  if (!result.ok()) {
    std::printf("ERROR: %s\n\n", result.error().c_str());
    return;
  }
  std::printf("%s\n", result.value().rows.ToString().c_str());
}

}  // namespace

int main() {
  Session session;

  // supplies(s#, p#): which supplier supplies which part; parts(p#, color).
  session.CreateTable("supplies", Relation::Parse("s#, p#",
                                                  "1,1; 1,2; 1,3; 1,4;"
                                                  "2,1; 2,3;"
                                                  "3,2; 3,4;"
                                                  "4,1; 4,2"));
  session.CreateTable("parts", "p#:int, color:string");
  session.InsertRows("parts", {{V(1), V("blue")},
                               {V(2), V("red")},
                               {V(3), V("blue")},
                               {V(4), V("red")}});

  Show("the data", session.Execute("SELECT * FROM supplies"));

  // Small divide: suppliers supplying ALL blue parts.
  Show("suppliers that supply all blue parts (small divide)",
       session.Execute("SELECT s# FROM supplies AS s DIVIDE BY ("
                       "SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#"));

  // Great divide: for EVERY color at once — one divisor group per color.
  Show("per color, the suppliers supplying all parts of that color (great divide)",
       session.Execute(
           "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#"));

  // Prepared statement: parse once, bind the color per execution; repeated
  // bindings hit the plan cache.
  Result<PreparedStatement> by_color = session.Prepare(
      "SELECT s# FROM supplies AS s DIVIDE BY ("
      "SELECT p# FROM parts WHERE color = ?) AS p ON s.p# = p.p#");
  if (by_color.ok()) {
    for (const char* color : {"blue", "red", "blue"}) {
      Result<QueryResult> result = by_color.value().Execute({Value::Str(color)});
      if (result.ok()) {
        std::printf("suppliers covering all %s parts: %zu (cache %s)\n", color,
                    result.value().rows.size(),
                    result.value().profile.plan_cache_hit ? "hit" : "miss");
      }
    }
  }

  // Cursors stream rows without materializing the whole result.
  Result<ResultCursor> cursor = session.Query("SELECT * FROM parts");
  if (cursor.ok()) {
    std::printf("\nstreaming parts:\n");
    Tuple row;
    while (cursor.value().Next(&row)) {
      std::printf("  p#=%s color=%s\n", row[0].ToString().c_str(), row[1].ToString().c_str());
    }
  }

  // EXPLAIN shows the compile story: the applied laws and the final plan.
  Show("EXPLAIN of a filtered great divide (watch the laws fire)",
       session.Execute("EXPLAIN SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p "
                       "ON s.p# = p.p# WHERE color = 'red'"));
  return 0;
}
