// Quickstart: build relations, run the small and great divide, and ask the
// classic universal-quantification question from the paper's introduction:
// "Find the suppliers that supply all blue parts."

#include <cstdio>

#include "algebra/divide.hpp"
#include "algebra/ops.hpp"

using namespace quotient;

int main() {
  // supplies(s#, p#): which supplier supplies which part.
  Relation supplies = Relation::Parse("s#, p#",
                                      "1,1; 1,2; 1,3; 1,4;"
                                      "2,1; 2,3;"
                                      "3,2; 3,4;"
                                      "4,1; 4,2");
  // parts(p#, color).
  Relation parts = Relation::FromRows(
      "p#:int, color:string",
      {{V(1), V("blue")}, {V(2), V("red")}, {V(3), V("blue")}, {V(4), V("red")}});

  std::printf("supplies:\n%s\n", supplies.ToString().c_str());
  std::printf("parts:\n%s\n", parts.ToString().c_str());

  // Small divide: suppliers supplying ALL blue parts.
  Relation blue = Project(Select(parts, Expr::ColCmp("color", CmpOp::kEq, Value::Str("blue"))),
                          {"p#"});
  Relation all_blue_suppliers = Divide(supplies, blue);
  std::printf("suppliers that supply all blue parts (supplies / blue_parts):\n%s\n",
              all_blue_suppliers.ToString().c_str());

  // Great divide: for EVERY color at once — one divisor group per color.
  Relation quotient = GreatDivide(supplies, parts);
  std::printf("per color, the suppliers supplying all parts of that color (/*):\n%s\n",
              quotient.ToString().c_str());

  // The three definitions of each operator agree (Theorem 1 of the paper).
  bool small_agree = DivideCodd(supplies, blue) == DivideHealy(supplies, blue) &&
                     DivideHealy(supplies, blue) == DivideMaier(supplies, blue);
  bool great_agree = GreatDivideSCD(supplies, parts) == GreatDivideDemolombe(supplies, parts) &&
                     GreatDivideDemolombe(supplies, parts) == GreatDivideTodd(supplies, parts);
  std::printf("all small-divide definitions agree: %s\n", small_agree ? "yes" : "no");
  std::printf("all great-divide definitions agree: %s (Theorem 1)\n",
              great_agree ? "yes" : "no");
  return 0;
}
