// Section 3 end to end: frequent itemset discovery where the support
// counting phase is a single great divide over the vertical layout
// transactions(tid, item) ÷* candidates(item, itemset).

#include <cstdio>

#include "algebra/generator.hpp"
#include "api/session.hpp"
#include "mining/apriori.hpp"

using namespace quotient;

int main() {
  DataGen gen(7);
  Relation transactions = gen.Transactions(/*transactions=*/60, /*items=*/15,
                                           /*min_size=*/2, /*max_size=*/6);
  std::printf("synthetic baskets: %zu (tid, item) rows\n", transactions.size());

  // Registered through the Session front door like any client data, so SQL
  // can inspect the vertical layout before mining starts.
  Session session;
  session.CreateTable("transactions", transactions);
  Result<QueryResult> stats = session.Execute(
      "SELECT tid, COUNT(item) AS basket FROM transactions GROUP BY tid "
      "HAVING COUNT(item) >= 6");
  if (stats.ok()) {
    std::printf("baskets with >= 6 items (via SQL): %zu\n\n", stats.value().rows.size());
  }

  const int64_t min_support = 10;
  for (auto method : {mining::SupportCounting::kGreatDivide,
                      mining::SupportCounting::kHashProbe,
                      mining::SupportCounting::kSqlDivide}) {
    mining::Apriori miner(transactions, min_support, method);
    std::vector<mining::FrequentItemset> result = miner.Run();
    std::printf("support counting via %-12s -> %zu frequent itemsets\n",
                mining::SupportCountingName(method), result.size());
  }

  // Show the actual itemsets once (all methods agree; the tests prove it).
  mining::Apriori miner(transactions, min_support, mining::SupportCounting::kGreatDivide);
  std::printf("\nfrequent itemsets (min_support = %lld):\n",
              static_cast<long long>(min_support));
  for (const mining::FrequentItemset& itemset : miner.Run()) {
    std::printf("  {");
    for (size_t i = 0; i < itemset.items.size(); ++i) {
      std::printf("%s%lld", i > 0 ? ", " : "", static_cast<long long>(itemset.items[i]));
    }
    std::printf("}  support=%lld\n", static_cast<long long>(itemset.support));
  }

  // The paper's point (§3): one great divide can test candidates of MIXED
  // sizes against all transactions at once.
  std::vector<std::vector<int64_t>> mixed = {{0}, {0, 1}, {0, 1, 2}};
  std::vector<int64_t> support = miner.CountSupport(mixed);
  std::printf("\nmixed-size candidates in ONE divide: {0}:%lld {0,1}:%lld {0,1,2}:%lld\n",
              static_cast<long long>(support[0]), static_cast<long long>(support[1]),
              static_cast<long long>(support[2]));
  return 0;
}
