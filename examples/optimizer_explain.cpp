// EXPLAIN walk-through: how the rewrite engine applies the paper's laws to
// plans containing division operators, with before/after plans, cost
// estimates, and physical-execution row counts.

#include <cstdio>

#include "algebra/generator.hpp"
#include "api/session.hpp"
#include "opt/optimizer.hpp"

using namespace quotient;

namespace {

void Explain(const char* title, const PlanPtr& plan, const Catalog& catalog,
             bool runtime_checks = false) {
  std::printf("================ %s\noriginal plan:\n%s\n", title, plan->ToString().c_str());
  OptimizerOptions options;
  options.allow_runtime_checks = runtime_checks;
  Optimizer optimizer(catalog, options);
  OptimizationReport report;
  ExecProfile profile;
  Relation result = optimizer.Run(plan, &profile, &report);
  std::printf("%s\n", report.Explain().c_str());
  std::printf("execution (rows per operator):\n%s", profile.explain.c_str());
  std::printf("result: %zu tuples\n\n", result.size());
}

}  // namespace

int main() {
  DataGen gen(3);
  Catalog catalog;
  Relation r2 = gen.Divisor(/*size=*/6, /*domain=*/24);
  // Plant full-divisor groups so the quotients are nonempty.
  catalog.Put("r1", gen.DividendWithHits(/*groups=*/200, /*hit_groups=*/30, r2,
                                         /*domain=*/24, /*density=*/0.4));
  catalog.Put("r2", r2);
  catalog.Put("star", Relation::Parse("z", "1; 2; 3"));
  catalog.Put("gd", gen.GreatDivisor(/*groups=*/4, /*domain=*/24, /*density=*/0.25));

  // Law 3: selection above a division is pushed into the dividend.
  Explain("Law 3: selection push-down",
          LogicalOp::Select(
              LogicalOp::Divide(LogicalOp::Scan(catalog, "r1"), LogicalOp::Scan(catalog, "r2")),
              Expr::ColCmp("a", CmpOp::kLt, V(20))),
          catalog);

  // Law 8: division of a product pushes to the divisor-carrying factor.
  Explain("Law 8: divide through product",
          LogicalOp::Divide(
              LogicalOp::Product(LogicalOp::Scan(catalog, "star"), LogicalOp::Scan(catalog, "r1")),
              LogicalOp::Scan(catalog, "r2")),
          catalog);

  // Laws 14/15 on the great divide.
  Explain("Law 15: divisor-group selection push-down",
          LogicalOp::Select(LogicalOp::GreatDivide(LogicalOp::Scan(catalog, "r1"),
                                                   LogicalOp::Scan(catalog, "gd")),
                            Expr::ColCmp("c", CmpOp::kEq, V(2))),
          catalog);

  // Law 11: division over a freshly grouped dividend becomes semi-joins.
  catalog.Put("r0", gen.RandomRelation(Schema::Parse("a, x"), 400, 50));
  catalog.Put("one", Relation::Parse("b", "25"));
  Explain("Law 11: grouped dividend",
          LogicalOp::Divide(LogicalOp::GroupBy(LogicalOp::Scan(catalog, "r0"), {"a"},
                                               {{AggFunc::kSum, "x", "b"}}),
                            LogicalOp::Scan(catalog, "one")),
          catalog);

  // The same machinery from SQL: the Session front door runs EXPLAIN as a
  // statement, so clients see the rewrite trace without building plans.
  Session session;
  session.CreateTable("r1", catalog.Get("r1"));
  session.CreateTable("r2", catalog.Get("r2"));
  Result<QueryResult> explained = session.Execute(
      "EXPLAIN SELECT a FROM r1 DIVIDE BY r2 ON r1.b = r2.b WHERE a < 20");
  if (explained.ok()) {
    std::printf("================ the same Law 3 pushdown, via SQL EXPLAIN\n");
    for (const Tuple& line : explained.value().rows.tuples()) {
      std::printf("%s\n", line[1].ToString().c_str());
    }
  }
  return 0;
}
