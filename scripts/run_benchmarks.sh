#!/usr/bin/env bash
# Builds Release and emits benchmark JSON so PRs have a perf trajectory to
# compare against.
#
# Usage: scripts/run_benchmarks.sh [output-dir]
#   Writes BENCH_division.json (and BENCH_key_codec.json) to output-dir
#   (default: bench-results/). Compare runs with benchmark's own
#   tools/compare.py, or just diff the real_time fields.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out_dir="${1:-"${repo_root}/bench-results"}"
build_dir="${repo_root}/build-bench"

cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${build_dir}" -j "$(nproc)" \
  --target bench_division_algorithms bench_key_codec >/dev/null

mkdir -p "${out_dir}"

"${build_dir}/bench_division_algorithms" \
  --benchmark_out="${out_dir}/BENCH_division.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

"${build_dir}/bench_key_codec" \
  --benchmark_out="${out_dir}/BENCH_key_codec.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "Wrote ${out_dir}/BENCH_division.json and ${out_dir}/BENCH_key_codec.json"
