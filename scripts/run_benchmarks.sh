#!/usr/bin/env bash
# Builds Release and emits benchmark JSON so PRs have a perf trajectory to
# compare against.
#
# Usage: scripts/run_benchmarks.sh [output-dir]
#   Writes to output-dir (default: bench-results/):
#     BENCH_division.json        division algorithms, batched execution
#     BENCH_division_tuple.json  same binary forced to tuple-at-a-time
#     BENCH_key_codec.json       key-codec microbenchmarks
#     BENCH_batched.json         per-benchmark batched vs tuple comparison
#                                (division + law benches), with speedups
#     BENCH_parallel.json        QUOTIENT_THREADS=1 vs N A/B of the
#                                morsel-driven parallel executor
#                                (docs/parallel_execution.md)
#     BENCH_sql.json             end-to-end SQL through the Session front
#                                door (parse -> rewrite laws -> parallel
#                                exec; plan-cache hit vs miss vs the oracle
#                                interpreter; docs/api.md)
#     BENCH_concurrency.json     N concurrent sessions over one shared
#                                Database (bench_concurrent_sessions.cpp):
#                                sessions sweep 1..8 at worker-pool sizes
#                                {1, N}, with throughput per configuration
#     BENCH_robustness.json      query-lifecycle governor (docs/
#                                robustness.md): governed vs ungoverned
#                                HashDivision/1024/16 overhead plus
#                                Session::Cancel latency on an in-flight
#                                parallel DIVIDE BY, spill-forced vs
#                                in-memory execution of the same point, and
#                                admission-controller latencies
#     BENCH_recycler.json        cross-query artifact recycler (docs/
#                                recycler.md): recycling-off vs warm-hit vs
#                                cold-publish per workload, with the
#                                warm-vs-off speedup (bar: >= 2x on the
#                                build-dominated workloads)
#     BENCH_txn.json             transaction subsystem (docs/
#                                transactions.md): BEGIN/COMMIT machinery,
#                                write-set validate+publish, autocommit DML,
#                                the conflict-abort path, and dirty-overlay
#                                reads vs cached snapshot reads
#     BENCH_optimizer.json       cost-guided rewrite search (docs/
#                                optimizer.md): compile-time cost of the
#                                memoized exploration vs the greedy
#                                fixpoint, and execution of the plan each
#                                mode picks for a union-divisor query Law 1
#                                makes searchable but greedy cannot reach
#   Compare runs with benchmark's own tools/compare.py, or just diff the
#   real_time fields. QUOTIENT_BENCH_THREADS overrides the parallel A/B's
#   high thread count (default: nproc, min 2).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out_dir="${1:-"${repo_root}/bench-results"}"
build_dir="${repo_root}/build-bench"

cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${build_dir}" -j "$(nproc)" \
  --target bench_division_algorithms bench_key_codec bench_sql_e2e \
           bench_concurrent_sessions bench_cancellation bench_spill \
           bench_law10_semijoin bench_law13_partitioned_great_divide \
           bench_recycler bench_txn bench_optimizer >/dev/null

mkdir -p "${out_dir}"

run_bench() {  # binary mode out_file [extra args...]
  local binary="$1" mode="$2" out_file="$3"
  shift 3
  QUOTIENT_EXEC_MODE="${mode}" "${build_dir}/${binary}" \
    --benchmark_out="${out_file}" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.2 "$@"
}

run_bench_threads() {  # binary threads out_file [extra args...]
  local binary="$1" threads="$2" out_file="$3"
  shift 3
  QUOTIENT_EXEC_MODE=parallel QUOTIENT_THREADS="${threads}" "${build_dir}/${binary}" \
    --benchmark_out="${out_file}" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.2 "$@"
}

# Canonical trajectory files (batched is the engine default).
run_bench bench_division_algorithms batch "${out_dir}/BENCH_division.json"
run_bench bench_key_codec batch "${out_dir}/BENCH_key_codec.json"

# A/B: the same binaries under tuple-at-a-time execution.
run_bench bench_division_algorithms tuple "${out_dir}/BENCH_division_tuple.json"
run_bench bench_law10_semijoin batch "${out_dir}/.law10_batch.json"
run_bench bench_law10_semijoin tuple "${out_dir}/.law10_tuple.json"
run_bench bench_law13_partitioned_great_divide batch "${out_dir}/.law13_batch.json"
run_bench bench_law13_partitioned_great_divide tuple "${out_dir}/.law13_tuple.json"

# A/B the morsel-driven parallel executor: the same binaries in parallel
# mode at 1 worker vs N workers (the Law 13 partitioned bench also scales
# its pool-scheduled partitions).
par_threads="${QUOTIENT_BENCH_THREADS:-$(nproc)}"
if [ "${par_threads}" -lt 2 ]; then par_threads=2; fi

# End-to-end SQL through the Session front door, in the production
# configuration (parallel executor at the A/B's high thread count):
# compile+run on a cold plan cache vs warm cache vs the oracle interpreter
# baseline, plus prepared-statement re-execution.
run_bench_threads bench_sql_e2e "${par_threads}" "${out_dir}/BENCH_sql.json"

# Concurrent sessions over one shared Database: the bench binary sweeps the
# sessions axis (benchmark threads 1..8, one Session each); run it at a
# worker pool of 1 (pure inter-session concurrency) and of N (sessions
# compete for the shared morsel pool), then merge into BENCH_concurrency.json.
run_bench_threads bench_concurrent_sessions 1 "${out_dir}/.conc_pool1.json"
run_bench_threads bench_concurrent_sessions "${par_threads}" "${out_dir}/.conc_poolN.json"

# Governor robustness: governed-vs-ungoverned overhead on the canonical
# HashDivision/1024/16 point (acceptance bar: within 3%), plus the latency
# from Session::Cancel() to the in-flight statement unwinding.
run_bench_threads bench_cancellation "${par_threads}" "${out_dir}/.robustness_raw.json"

# Graceful degradation: the same HashDivision point in memory vs with the
# spill watermark forcing every store to disk, plus admission-controller
# fast-path and queued-handoff latencies.
run_bench_threads bench_spill "${par_threads}" "${out_dir}/.spill_raw.json"

# Artifact recycler: recycling-off vs warm-hit vs cold-publish per workload.
run_bench_threads bench_recycler "${par_threads}" "${out_dir}/.recycler_raw.json"

# Transactions: commit machinery, validate+publish, conflict abort, and
# dirty-overlay reads against the cached snapshot-read baseline.
run_bench_threads bench_txn "${par_threads}" "${out_dir}/BENCH_txn.json"

# Cost-guided rewrite search: Optimize() greedy vs search on a law-rich
# plan (compile-time overhead), and execution of each mode's chosen plan on
# a union-divisor workload only the search rule set can rewrite (Law 1).
run_bench bench_optimizer batch "${out_dir}/BENCH_optimizer.json"

run_bench_threads bench_division_algorithms 1 "${out_dir}/.div_par1.json"
run_bench_threads bench_division_algorithms "${par_threads}" "${out_dir}/.div_parN.json"
run_bench_threads bench_law10_semijoin 1 "${out_dir}/.law10_par1.json"
run_bench_threads bench_law10_semijoin "${par_threads}" "${out_dir}/.law10_parN.json"
run_bench_threads bench_law13_partitioned_great_divide 1 "${out_dir}/.law13_par1.json"
run_bench_threads bench_law13_partitioned_great_divide "${par_threads}" "${out_dir}/.law13_parN.json"

# Merge into one comparison file: real_time per mode plus the speedup.
PAR_THREADS="${par_threads}" python3 - "${out_dir}" <<'PY'
import json, sys, os

out_dir = sys.argv[1]
pairs = [
    ("division", "BENCH_division.json", "BENCH_division_tuple.json"),
    ("law10_semijoin", ".law10_batch.json", ".law10_tuple.json"),
    ("law13_partitioned_great_divide", ".law13_batch.json", ".law13_tuple.json"),
]

def times(path):
    with open(os.path.join(out_dir, path)) as f:
        doc = json.load(f)
    return {b["name"]: b["real_time"]
            for b in doc.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}

comparison = []
for suite, batch_file, tuple_file in pairs:
    batched, tuple_at_a_time = times(batch_file), times(tuple_file)
    for name in batched:
        if name not in tuple_at_a_time:
            continue
        b, t = batched[name], tuple_at_a_time[name]
        comparison.append({
            "suite": suite,
            "name": name,
            "batched_us": round(b, 3),
            "tuple_us": round(t, 3),
            "speedup": round(t / b, 3) if b > 0 else None,
        })

with open(os.path.join(out_dir, "BENCH_batched.json"), "w") as f:
    json.dump({"comparison": comparison}, f, indent=1)

hash_speedups = [c["speedup"] for c in comparison
                 if c["suite"] == "division" and "Hash" in c["name"]]
if hash_speedups:
    print(f"hash-division speedup (batched vs tuple): "
          f"min {min(hash_speedups):.2f}x / "
          f"median {sorted(hash_speedups)[len(hash_speedups)//2]:.2f}x")

# Parallel A/B: 1 worker vs N workers, same parallel-mode binaries.
par_pairs = [
    ("division", ".div_par1.json", ".div_parN.json"),
    ("law10_semijoin", ".law10_par1.json", ".law10_parN.json"),
    ("law13_partitioned_great_divide", ".law13_par1.json", ".law13_parN.json"),
]
threads_n = os.environ.get("PAR_THREADS", "?")
par_comparison = []
for suite, one_file, n_file in par_pairs:
    one, many = times(one_file), times(n_file)
    for name in one:
        if name not in many:
            continue
        t1, tn = one[name], many[name]
        par_comparison.append({
            "suite": suite,
            "name": name,
            "threads_1_us": round(t1, 3),
            "threads_n_us": round(tn, 3),
            "speedup": round(t1 / tn, 3) if tn > 0 else None,
        })

with open(os.path.join(out_dir, "BENCH_parallel.json"), "w") as f:
    json.dump({"threads_n": threads_n, "comparison": par_comparison}, f, indent=1)

# Concurrent sessions: one row per (workload, sessions, pool size), with
# aggregate throughput. The bench reports items_per_second across all
# session threads under UseRealTime, i.e. statements/second for the fleet.
def session_rows(path, pool):
    with open(os.path.join(out_dir, path)) as f:
        doc = json.load(f)
    rows = []
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        # Names look like "BM_ConcurrentSessions_CachedDivide/real_time/threads:4".
        name = b["name"]
        sessions = 1
        for part in name.split("/"):
            if part.startswith("threads:"):
                sessions = int(part.split(":")[1])
        rows.append({
            "workload": name.split("/")[0].replace("BM_ConcurrentSessions_", ""),
            "sessions": sessions,
            "pool_threads": pool,
            "statements_per_second": round(b.get("items_per_second", 0.0), 1),
            "real_time_us": round(b["real_time"], 3),
        })
    return rows

concurrency = session_rows(".conc_pool1.json", 1) + \
    session_rows(".conc_poolN.json", int(threads_n))
with open(os.path.join(out_dir, "BENCH_concurrency.json"), "w") as f:
    json.dump({"pool_threads_n": threads_n, "results": concurrency}, f, indent=1)

best = {}
for row in concurrency:
    key = (row["workload"], row["pool_threads"])
    best[key] = max(best.get(key, 0.0), row["statements_per_second"])
for (workload, pool), qps in sorted(best.items()):
    print(f"concurrency {workload} (pool={pool}): peak {qps:,.0f} statements/s")

# Governor robustness: overhead of the installed QueryContext on the
# canonical HashDivision point, plus cancel latency (manual-timed from
# Session::Cancel() to statement unwind).
rob = times(".robustness_raw.json")

def first_time(prefix):
    for name, t in sorted(rob.items()):
        if name.startswith(prefix):
            return t
    return None

ungoverned = first_time("BM_HashDivision/ungoverned")
governed = first_time("BM_HashDivision/governed")
cancel_latency = first_time("BM_CancelLatency")

# Spill + admission (bench_spill): in-memory vs spill-forced on the same
# HashDivision point, admission fast path, queued-grant handoff latency.
spill = times(".spill_raw.json")

def first_spill(prefix):
    for name, t in sorted(spill.items()):
        if name.startswith(prefix):
            return t
    return None

in_memory = first_spill("BM_HashDivision/in_memory")
spill_forced = first_spill("BM_HashDivision/spill_forced")
admission_fast = first_spill("BM_AdmissionUncontended")
admission_handoff = first_spill("BM_AdmissionQueuedHandoff")
robustness = {
    "hash_division_1024_16": {
        "ungoverned_us": round(ungoverned, 3) if ungoverned else None,
        "governed_us": round(governed, 3) if governed else None,
        "overhead_pct": round((governed / ungoverned - 1.0) * 100, 2)
                        if governed and ungoverned else None,
    },
    "cancel_latency_us": round(cancel_latency, 3) if cancel_latency else None,
    "spill_hash_division_1024_16": {
        "in_memory_us": round(in_memory, 3) if in_memory else None,
        "spill_forced_us": round(spill_forced, 3) if spill_forced else None,
        "slowdown": round(spill_forced / in_memory, 3)
                    if spill_forced and in_memory else None,
    },
    "admission_uncontended_us": round(admission_fast, 3) if admission_fast else None,
    "admission_queued_handoff_us": round(admission_handoff, 3)
                                   if admission_handoff else None,
}
with open(os.path.join(out_dir, "BENCH_robustness.json"), "w") as f:
    json.dump(robustness, f, indent=1)
if robustness["hash_division_1024_16"]["overhead_pct"] is not None:
    print(f"governor overhead on HashDivision/1024/16: "
          f"{robustness['hash_division_1024_16']['overhead_pct']:+.2f}%"
          f" | cancel latency: {robustness['cancel_latency_us']:.1f} us")
if robustness["spill_hash_division_1024_16"]["slowdown"] is not None:
    print(f"spill-forced HashDivision/1024/16: "
          f"{robustness['spill_hash_division_1024_16']['slowdown']:.2f}x in-memory"
          f" | admission handoff: {robustness['admission_queued_handoff_us']:.1f} us")

# Artifact recycler: off vs warm vs cold per workload, warm-vs-off speedup.
rec = times(".recycler_raw.json")

def recycler_time(workload, variant):
    for name, t in sorted(rec.items()):
        if name.startswith(f"BM_Recycler_{workload}_{variant}"):
            return t
    return None

recycler = []
for workload in ("Divide", "GroupBy", "SemiJoin"):
    off_t = recycler_time(workload, "off")
    warm = recycler_time(workload, "warm")
    cold = recycler_time(workload, "cold")
    if off_t is None or warm is None:
        continue
    recycler.append({
        "workload": workload,
        "off_us": round(off_t, 3),
        "warm_us": round(warm, 3),
        "cold_us": round(cold, 3) if cold is not None else None,
        "warm_speedup": round(off_t / warm, 3) if warm > 0 else None,
    })
with open(os.path.join(out_dir, "BENCH_recycler.json"), "w") as f:
    json.dump({"results": recycler}, f, indent=1)
for row in recycler:
    print(f"recycler {row['workload']}: warm {row['warm_speedup']:.2f}x off "
          f"({row['off_us']:.0f} us -> {row['warm_us']:.0f} us)")

par_speedups = [c["speedup"] for c in par_comparison if c["speedup"] is not None]
if par_speedups:
    print(f"parallel speedup ({threads_n} threads vs 1): "
          f"min {min(par_speedups):.2f}x / "
          f"median {sorted(par_speedups)[len(par_speedups)//2]:.2f}x / "
          f"max {max(par_speedups):.2f}x")
PY
rm -f "${out_dir}"/.law1[03]_*.json "${out_dir}"/.div_par*.json "${out_dir}"/.conc_pool*.json \
      "${out_dir}"/.robustness_raw.json "${out_dir}"/.spill_raw.json \
      "${out_dir}"/.recycler_raw.json

echo "Wrote ${out_dir}/BENCH_division.json, BENCH_division_tuple.json," \
     "BENCH_key_codec.json, BENCH_batched.json, BENCH_parallel.json," \
     "BENCH_sql.json, BENCH_concurrency.json, BENCH_robustness.json," \
     "BENCH_recycler.json and BENCH_txn.json"
